"""Figures 12 and 14 — initial-topology comparison (Sections 4.2.2).

Three starting topologies at ``m = n - 1`` edges:

* ``random`` — the paper's random spanning-tree-based networks with
  ``n`` edges (we use exactly the paper's ``m = n`` setting);
* ``rl`` (random line) — a path with uniform per-edge ownership;
* ``dl`` (directed line) — a path whose ownership forms a directed path.

Headline observations:

* SUM (Figure 12): topology impact is marginal (within ~2x); ``dl`` is
  *fastest* under both policies — the opposite of the authors' prior
  expectation; max cost <= random throughout.
* MAX (Figure 14): topology matters more (up to ~5x) and the order
  flips: random < rl < dl; alpha has almost no influence; the two
  policies perform almost identically.
"""

from __future__ import annotations

from typing import Sequence, Tuple

from .config import ExperimentConfig, FigureSpec

__all__ = ["figure12_spec", "figure14_spec", "TOPOLOGIES"]

TOPOLOGIES: Tuple[str, ...] = ("random", "rl", "dl")


def _topo_configs(mode: str, alphas: Sequence[str], topologies: Sequence[str]) -> Tuple[ExperimentConfig, ...]:
    out = []
    for policy in ("maxcost", "random"):
        for topo in topologies:
            for a in alphas:
                kwargs = dict(
                    game="gbg", mode=mode, policy=policy, topology=topo, alpha=a
                )
                if topo == "random":
                    kwargs["m_edges"] = "n"
                out.append(ExperimentConfig(**kwargs))
    return tuple(out)


def figure12_spec(
    alphas: Sequence[str] = ("n/10", "n"),
    topologies: Sequence[str] = TOPOLOGIES,
    n_values: Sequence[int] = (10, 20, 30),
    trials: int = 20,
) -> FigureSpec:
    """Figure 12: SUM-GBG starting-topology comparison (max steps)."""
    return FigureSpec(
        figure="fig12",
        title="SUM-GBG: starting topologies random/rl/dl",
        configs=_topo_configs("sum", alphas, topologies),
        n_values=tuple(n_values),
        trials=trials,
        envelope=("3n",),
    )


def figure14_spec(
    alphas: Sequence[str] = ("n/10", "n"),
    topologies: Sequence[str] = TOPOLOGIES,
    n_values: Sequence[int] = (10, 20, 30),
    trials: int = 20,
) -> FigureSpec:
    """Figure 14: MAX-GBG starting-topology comparison (max steps)."""
    return FigureSpec(
        figure="fig14",
        title="MAX-GBG: starting topologies random/rl/dl",
        configs=_topo_configs("max", alphas, topologies),
        n_values=tuple(n_values),
        trials=trials,
        envelope=("6n",),
    )
