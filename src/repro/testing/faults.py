"""Deterministic, seeded fault injection for the campaign fabric.

Campaigns run for hours across worker fleets, where crashes, torn
writes, full disks, and clock skew are the norm.  PR 6 proved ``kill
-9`` safety for one hand-picked failure; this module makes the whole
failure family *provokable on demand* so the chaos suite
(``tests/experiments/test_chaos.py``) can machine-check that a drain
survives every one of them byte-identically.

The seam is a tiny filesystem facade: :class:`FS` performs the real
operations, and :class:`~repro.experiments.fabric.WorkQueue`,
:class:`~repro.experiments.campaign.CampaignStore` (hence the
exploration store), and :mod:`repro.experiments.columnar` route every
*mutating* call — rename/replace, whole-file writes, JSONL appends,
utime, stat, unlink, rmtree — through the ``fs`` object they were
constructed with.  Production code gets :data:`REAL_FS` (zero
overhead beyond one attribute hop); the chaos suite hands in a
:class:`FaultyFS` armed with a :class:`FaultPlan`.

A plan is a sequence of :class:`Fault` rules, each matching one
operation kind (optionally filtered by a path substring), counting
matching calls, and firing once at the ``nth`` match.  Fault kinds:

``crash``
    Simulated process death *before* the operation takes effect: the
    op is not performed, the FS flips into **dead mode** (every later
    call raises too, so ``finally`` blocks cannot "clean up" state a
    real ``kill -9`` would have left behind), and
    :class:`InjectedCrash` propagates.  ``InjectedCrash`` derives from
    ``BaseException`` precisely so retry loops catching ``Exception``
    cannot swallow a simulated death.
``crash_after``
    The op completes, *then* the process dies — the other side of
    every rename boundary.
``torn``
    A write persists only a prefix (``frac`` of the payload) before
    the process dies: the classic torn JSONL line / half-written
    manifest.
``short``
    A write persists a prefix and raises ``OSError`` — the process
    survives and sees the failure (short write / EIO).
``enospc``
    ``OSError(ENOSPC)`` before anything is written: disk full.
``skew``
    ``utime`` stamps and ``stat`` results are shifted by ``skew``
    seconds (typically ``once=False``): a worker whose wall clock
    disagrees with the coordinator's.  Content-based heartbeats must
    shrug this off.
``missing``
    ``stat`` raises ``FileNotFoundError``: the stat race where a file
    vanishes between a directory listing and the stat.
``stall``
    The op sleeps ``stall`` seconds first, then proceeds: a stuck NFS
    call or an overloaded worker.

Plans replay from a seed: :meth:`FaultPlan.seeded` draws rules from
``random.Random(seed)``, and because the drained workload issues a
deterministic operation sequence, the same seed provokes the same
failure at the same point every time.  :attr:`FaultyFS.fired` records
what actually triggered, so a test can assert its plan bit.
"""

from __future__ import annotations

import errno
import os
import random
import shutil
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import List, Optional, Sequence, Tuple

__all__ = [
    "FS",
    "REAL_FS",
    "Fault",
    "FaultPlan",
    "FaultyFS",
    "InjectedCrash",
    "FAULT_KINDS",
    "FAULT_OPS",
]

#: operation labels a fault can match (``"*"`` matches any of them).
FAULT_OPS = (
    "rename", "replace", "write", "append", "utime", "stat", "unlink",
    "rmtree",
)

FAULT_KINDS = (
    "crash", "crash_after", "torn", "short", "enospc", "skew", "missing",
    "stall",
)

#: which kinds make sense per op — :meth:`FaultPlan.seeded` draws only
#: compatible pairs (a "torn rename" is not a thing).
_OP_KINDS = {
    "rename": ("crash", "crash_after", "enospc", "stall"),
    "replace": ("crash", "crash_after", "enospc", "stall"),
    "write": ("crash", "crash_after", "torn", "short", "enospc", "stall"),
    "append": ("crash", "crash_after", "torn", "short", "enospc", "stall"),
    "utime": ("crash", "crash_after", "skew", "missing", "stall"),
    "stat": ("crash", "missing", "skew", "stall"),
    "unlink": ("crash", "crash_after", "missing", "stall"),
    "rmtree": ("crash", "crash_after"),
}


class InjectedCrash(BaseException):
    """Simulated process death at an injected point.

    Deliberately a ``BaseException``: the fabric's retry paths catch
    ``Exception`` (a unit error is retryable), but a process that died
    did not *raise* — it stopped.  Only the chaos harness catches this
    and "reboots" via :meth:`FaultyFS.revive`.
    """


class FS:
    """The real filesystem: every op is the obvious stdlib call.

    This is the production default (:data:`REAL_FS`).  Instances are
    stateless, picklable (worker processes receive the fs with their
    source), and safe to share.
    """

    def rename(self, src, dst) -> None:
        os.rename(src, dst)

    def replace(self, src, dst) -> None:
        os.replace(src, dst)

    def write_text(self, path, text: str) -> None:
        Path(path).write_text(text)

    def append_text(self, fh, text: str) -> None:
        """One flushed append to an open text handle (JSONL lines)."""
        fh.write(text)
        fh.flush()

    def utime(self, path, times=None) -> None:
        os.utime(path, times)

    def stat(self, path) -> os.stat_result:
        return os.stat(path)

    def unlink(self, path) -> None:
        os.unlink(path)

    def rmtree(self, path) -> None:
        shutil.rmtree(path)


#: the shared production instance (stateless, so one is enough).
REAL_FS = FS()


def resolve_fs(fs: Optional[FS]) -> FS:
    """``fs`` itself, or the production filesystem when ``None``."""
    return fs if fs is not None else REAL_FS


@dataclass(frozen=True)
class Fault:
    """One injection rule: fire ``kind`` at the ``nth`` matching call.

    ``op`` is a label from :data:`FAULT_OPS` (or ``"*"``); ``path``
    restricts matches to calls whose primary path contains the
    substring.  ``once`` rules disarm after firing — the default, so a
    rebooted run proceeds past the failure; persistent conditions
    (clock skew) set ``once=False`` and fire on every match from
    ``nth`` onward.
    """

    op: str
    nth: int = 0
    kind: str = "crash"
    path: str = ""
    skew: float = 0.0
    stall: float = 0.0
    frac: float = 0.5
    once: bool = True

    def __post_init__(self) -> None:
        if self.op != "*" and self.op not in FAULT_OPS:
            raise ValueError(f"unknown fault op {self.op!r} "
                             f"(choose from {', '.join(FAULT_OPS)} or '*')")
        if self.kind not in FAULT_KINDS:
            raise ValueError(f"unknown fault kind {self.kind!r} "
                             f"(choose from {', '.join(FAULT_KINDS)})")


@dataclass(frozen=True)
class FaultPlan:
    """An ordered set of :class:`Fault` rules, optionally seed-derived.

    Construct directly for hand-written plans, or via :meth:`seeded`
    for reproducible random ones.  The plan is immutable data; all
    firing state lives on the :class:`FaultyFS` that executes it.
    """

    faults: Tuple[Fault, ...] = ()
    seed: Optional[int] = None

    @classmethod
    def seeded(
        cls,
        seed: int,
        *,
        ops: Sequence[str] = ("rename", "replace", "write", "append"),
        kinds: Sequence[str] = ("crash", "crash_after", "torn", "enospc"),
        max_faults: int = 2,
        horizon: int = 40,
    ) -> "FaultPlan":
        """A reproducible random plan: ``random.Random(seed)`` draws
        1..``max_faults`` rules, each targeting the ``nth`` matching
        call for ``nth`` in ``[0, horizon)``.  Kinds are filtered to
        ones that make sense for the drawn op (no torn renames).  The
        same seed always builds the same plan, and against a
        deterministic operation sequence provokes the same failure at
        the same point.
        """
        rng = random.Random(seed)
        faults = []
        for _ in range(rng.randint(1, max_faults)):
            op = rng.choice(list(ops))
            allowed = [k for k in kinds if k in _OP_KINDS[op]] or ["crash"]
            faults.append(Fault(
                op=op,
                nth=rng.randrange(horizon),
                kind=rng.choice(allowed),
                frac=rng.choice((0.2, 0.5, 0.8)),
            ))
        return cls(faults=tuple(faults), seed=seed)

    def describe(self) -> str:
        rules = "; ".join(
            f"{f.kind}@{f.op}[{f.nth}]" + (f"~{f.path}" if f.path else "")
            for f in self.faults
        )
        tag = f"seed={self.seed} " if self.seed is not None else ""
        return f"FaultPlan({tag}{rules or 'no faults'})"


@dataclass
class _Armed:
    """Runtime state of one rule: its match count and whether it fired."""

    fault: Fault
    matches: int = 0
    fired: int = 0


class FaultyFS(FS):
    """An :class:`FS` that executes a :class:`FaultPlan`.

    After a ``crash``-family fault fires the FS is **dead**: every
    subsequent operation raises :class:`InjectedCrash` too, so
    in-process cleanup code (``finally`` blocks, context managers)
    cannot mutate state a real dead process would have left behind.
    The chaos harness calls :meth:`revive` to simulate the reboot and
    re-drives the workload; ``once`` rules stay disarmed, so the rerun
    proceeds past the failure.

    Instances pickle (plain data only), so a plan can ride into
    spawned worker processes — each process then counts its own
    operation stream, which is exactly the per-worker injection the
    stalled-worker plans want.
    """

    def __init__(self, plan: FaultPlan) -> None:
        self.plan = plan
        self.rules: List[_Armed] = [_Armed(f) for f in plan.faults]
        self.dead = False
        #: ``(op, path, kind)`` of every fault that fired, in order.
        self.fired: List[Tuple[str, str, str]] = []

    # -- lifecycle ---------------------------------------------------------
    def revive(self) -> None:
        """Simulate the reboot after an injected death.  Fired ``once``
        rules stay disarmed; persistent rules keep applying."""
        self.dead = False

    def any_fired(self) -> bool:
        return bool(self.fired)

    # -- rule matching -----------------------------------------------------
    def _match(self, op: str, path) -> Optional[Fault]:
        if self.dead:
            raise InjectedCrash(f"fs is dead (post-crash {op} on {path})")
        hit: Optional[Fault] = None
        for armed in self.rules:
            f = armed.fault
            if f.op != "*" and f.op != op:
                continue
            if f.path and f.path not in str(path):
                continue
            n = armed.matches
            armed.matches += 1
            if f.once and armed.fired:
                continue
            if (n == f.nth) if f.once else (n >= f.nth):
                armed.fired += 1
                if hit is None:  # first matching rule wins this call
                    hit = f
        if hit is not None:
            self.fired.append((hit.kind, op, str(path)))
        return hit

    def _die(self, op: str, path) -> None:
        self.dead = True
        raise InjectedCrash(f"injected crash at {op} on {path}")

    # -- faulted operations ------------------------------------------------
    def rename(self, src, dst) -> None:
        self._move(src, dst, os.rename, "rename")

    def replace(self, src, dst) -> None:
        self._move(src, dst, os.replace, "replace")

    def _move(self, src, dst, real, op: str) -> None:
        fault = self._match(op, dst)
        if fault is not None:
            if fault.kind == "crash":
                self._die(op, dst)
            if fault.kind == "enospc":
                raise OSError(errno.ENOSPC, "injected: no space left", str(dst))
            if fault.kind == "stall":
                time.sleep(fault.stall)
        real(src, dst)
        if fault is not None and fault.kind == "crash_after":
            self._die(op, dst)

    def write_text(self, path, text: str) -> None:
        fault = self._match("write", path)
        if fault is not None:
            if fault.kind == "crash":
                self._die("write", path)
            if fault.kind == "enospc":
                raise OSError(errno.ENOSPC, "injected: no space left", str(path))
            if fault.kind == "stall":
                time.sleep(fault.stall)
            if fault.kind in ("torn", "short"):
                Path(path).write_text(text[: int(len(text) * fault.frac)])
                if fault.kind == "torn":
                    self._die("write", path)
                raise OSError(errno.EIO, "injected: short write", str(path))
        Path(path).write_text(text)
        if fault is not None and fault.kind == "crash_after":
            self._die("write", path)

    def append_text(self, fh, text: str) -> None:
        path = getattr(fh, "name", "<fh>")
        fault = self._match("append", path)
        if fault is not None:
            if fault.kind == "crash":
                self._die("append", path)
            if fault.kind == "enospc":
                raise OSError(errno.ENOSPC, "injected: no space left", str(path))
            if fault.kind == "stall":
                time.sleep(fault.stall)
            if fault.kind in ("torn", "short"):
                fh.write(text[: int(len(text) * fault.frac)])
                fh.flush()
                if fault.kind == "torn":
                    self._die("append", path)
                raise OSError(errno.EIO, "injected: short write", str(path))
        fh.write(text)
        fh.flush()
        if fault is not None and fault.kind == "crash_after":
            self._die("append", path)

    def utime(self, path, times=None) -> None:
        fault = self._match("utime", path)
        if fault is not None:
            if fault.kind == "crash":
                self._die("utime", path)
            if fault.kind == "skew":
                now = time.time() + fault.skew
                os.utime(path, (now, now))
                return
            if fault.kind == "missing":
                raise FileNotFoundError(errno.ENOENT, "injected: vanished",
                                        str(path))
            if fault.kind == "stall":
                time.sleep(fault.stall)
        os.utime(path, times)
        if fault is not None and fault.kind == "crash_after":
            self._die("utime", path)

    def stat(self, path) -> os.stat_result:
        fault = self._match("stat", path)
        if fault is not None:
            if fault.kind == "crash":
                self._die("stat", path)
            if fault.kind == "missing":
                raise FileNotFoundError(errno.ENOENT, "injected: vanished",
                                        str(path))
            if fault.kind == "stall":
                time.sleep(fault.stall)
            if fault.kind == "skew":
                real = os.stat(path)
                shifted = real.st_mtime + fault.skew
                return os.stat_result(
                    real[:7] + (real.st_atime, shifted, real.st_ctime)
                )
        return os.stat(path)

    def unlink(self, path) -> None:
        fault = self._match("unlink", path)
        if fault is not None:
            if fault.kind == "crash":
                self._die("unlink", path)
            if fault.kind == "missing":
                raise FileNotFoundError(errno.ENOENT, "injected: vanished",
                                        str(path))
            if fault.kind == "stall":
                time.sleep(fault.stall)
        os.unlink(path)
        if fault is not None and fault.kind == "crash_after":
            self._die("unlink", path)

    def rmtree(self, path) -> None:
        fault = self._match("rmtree", path)
        if fault is not None and fault.kind == "crash":
            self._die("rmtree", path)
        shutil.rmtree(path)
        if fault is not None and fault.kind == "crash_after":
            self._die("rmtree", path)

    # -- pickling (worker processes) ---------------------------------------
    def __getstate__(self) -> dict:
        return {"plan": self.plan}

    def __setstate__(self, state: dict) -> None:
        self.__init__(state["plan"])
