"""Testing instruments that ship with the package.

:mod:`repro.testing.faults` is the deterministic fault-injection
(chaos) layer: the filesystem seam the campaign fabric and stores
route their rename/write/stat calls through, and the seeded fault
plans that turn one hand-picked ``kill -9`` proof into a family of
machine-checked crash-consistency guarantees.
"""

from .faults import (  # noqa: F401
    FS,
    REAL_FS,
    Fault,
    FaultPlan,
    FaultyFS,
    InjectedCrash,
)

__all__ = ["FS", "REAL_FS", "Fault", "FaultPlan", "FaultyFS", "InjectedCrash"]
