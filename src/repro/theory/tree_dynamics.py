"""Instrumented tree dynamics — Sections 2.1 and 3.1.

This module carries the machinery behind the positive results:

* :func:`run_tree_dynamics` — a dynamics run that records the diameter
  trajectory and the potential (sorted cost vector / social cost) at
  every step, asserting the potential-decrease property along the way.
* :class:`Theorem211Policy` — the deterministic max-cost policy of the
  Theorem 2.11 lower-bound proof: ties among maximum-cost agents break
  towards the *smallest index*, and the moving agent picks the best
  swap whose new endpoint has the smallest index.
* :func:`path_lower_bound_run` — measures ``M(P_n)``, the number of
  moves the MAX-SG needs on the path under that policy (the paper shows
  it is ``Omega(n log n)``).
* :func:`potential_decreases` — checks Lemma 2.6 (sorted cost vector is
  a generalized ordinal potential for the MAX-SG on trees) on a given
  move.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Tuple

import numpy as np

from ..core.best_response import DeviationEvaluator
from ..core.costs import DistanceMode
from ..core.dynamics import RunResult, run_dynamics
from ..core.games import EPS, BestResponse, Game, SwapGame
from ..core.moves import Swap
from ..core.network import Network
from ..core.policies import MovePolicy
from ..graphs import adjacency as adj
from ..graphs.properties import sorted_cost_vector

__all__ = [
    "TreeRunReport",
    "run_tree_dynamics",
    "Theorem211Policy",
    "path_lower_bound_run",
    "potential_decreases",
    "lex_less",
]


def lex_less(a: np.ndarray, b: np.ndarray) -> bool:
    """Strict lexicographic comparison of equal-length vectors."""
    for x, y in zip(a, b):
        if x < y - EPS:
            return True
        if x > y + EPS:
            return False
    return False


def potential_decreases(before: Network, after: Network, mode: str = "max") -> bool:
    """Check the generalized ordinal potential decrease of one move.

    MAX-version: the sorted cost vector must decrease lexicographically
    (Lemma 2.6).  SUM-version: the social cost must strictly decrease
    (Lenzner, SAGT'11 — used by Corollary 3.1).
    """
    if DistanceMode(mode) is DistanceMode.MAX:
        return lex_less(sorted_cost_vector(after.A), sorted_cost_vector(before.A))
    D0 = adj.all_pairs_distances(before.A)
    D1 = adj.all_pairs_distances(after.A)
    return float(D1.sum()) < float(D0.sum()) - EPS


@dataclass
class TreeRunReport:
    """A dynamics run with per-step structural instrumentation."""

    result: RunResult
    diameters: List[float] = field(default_factory=list)
    potential_ok: bool = True
    potential_violations: List[int] = field(default_factory=list)

    @property
    def steps(self) -> int:
        """Number of improving moves performed."""
        return self.result.steps

    @property
    def diameter_monotone(self) -> bool:
        """Whether the diameter never increased along the run."""
        return all(b <= a + EPS for a, b in zip(self.diameters, self.diameters[1:]))


def run_tree_dynamics(
    game: Game,
    initial: Network,
    policy: MovePolicy,
    max_steps: int = 200_000,
    seed: Optional[int] = None,
    check_potential: bool = True,
    backend: str = "auto",
) -> TreeRunReport:
    """Run dynamics on a tree while recording diameters and checking the
    potential-decrease property step by step.

    Works for any game but the potential semantics follow the game's
    distance mode (Lemma 2.6 for MAX, social cost for SUM).
    """
    from ..core.dynamics import resolve_backend

    rng = np.random.default_rng(seed)
    net = initial.copy()
    backend_obj, select = resolve_backend(policy, net, backend)
    policy.reset()
    diameters = [adj.diameter(net.A)]
    trajectory = []
    violations: List[int] = []
    mode = game.mode.value
    step = 0
    status = "exhausted"
    while step < max_steps:
        br = select(game, net, rng, backend=backend_obj)
        if br is None:
            status = "converged"
            break
        from ..core.dynamics import StepRecord, choose_move
        from ..core.moves import move_kind

        move = choose_move(br, rng)
        before = net.copy() if check_potential else None
        kind = move_kind(move, net)
        move.apply(net)
        policy.notify(br.agent)
        trajectory.append(StepRecord(step, br.agent, move, kind, br.cost_before, br.best_cost))
        diameters.append(adj.diameter(net.A))
        if check_potential and not potential_decreases(before, net, mode):
            violations.append(step)
        step += 1
    result = RunResult(status, step, net, trajectory, backend_stats=backend_obj.stats())
    return TreeRunReport(
        result=result,
        diameters=diameters,
        potential_ok=not violations,
        potential_violations=violations,
    )


class Theorem211Policy(MovePolicy):
    """The deterministic policy of Theorem 2.11's lower-bound proof.

    Max cost policy; ties among maximum-cost agents break towards the
    smallest vertex index; and — because the move policy may not choose
    the move — the proof also pins the agent's tie-break: among best
    swaps, connect to the new neighbour of smallest index.  ``select``
    therefore returns a best-response object containing exactly one
    move.
    """

    def select(
        self,
        game: Game,
        net: Network,
        rng: np.random.Generator,
        backend=None,
    ) -> Optional[BestResponse]:
        """Smallest-index maximum-cost unhappy agent; smallest-index best swap."""
        costs = game.cost_vector(net, backend=backend)
        order = sorted(range(net.n), key=lambda u: (-costs[u], u))
        for u in order:
            br = game.best_responses(net, u, backend=backend)
            if br.is_improving:
                best = min(br.moves, key=lambda m: (m.new, m.old) if isinstance(m, Swap) else (net.n, 0))
                return BestResponse(u, br.cost_before, br.best_cost, [best])
        return None


def path_lower_bound_run(n: int, mode: str = "max") -> TreeRunReport:
    """Measure ``M(P_n)``: MAX-SG moves on the path under Theorem 2.11's
    deterministic policy.  The paper proves ``M(P_n) in Omega(n log n)``
    (and O(n log n) for any max-cost run)."""
    from ..graphs.generators import path_network

    net = path_network(n)
    game = SwapGame(mode)
    return run_tree_dynamics(game, net, Theorem211Policy(), check_potential=(mode == "max"))
