"""Closed-form convergence bounds from the paper's theorems.

These are the quantities the theory tests and benches compare measured
step counts against:

* Theorem 2.1 / Corollary 3.1 — O(n^3) for (A)SG dynamics on trees; the
  proof's explicit bound is ``sum_{i=3}^{n-1} (n*i - i^2)/2 + 1``.
* Lemma 2.10 — at most ``(n*D - D^2)/2`` moves before the diameter of a
  MAX-SG tree process must shrink.
* Theorem 2.11 — Theta(n log n) for the MAX-SG on trees under the max
  cost policy.
* Corollary 3.2 — the SUM-ASG on trees under the max cost policy
  converges in ``max(0, n-3)`` steps (n even) and
  ``max(0, n + ceil(n/2) - 5)`` steps (n odd), both tight.
"""

from __future__ import annotations

import math

__all__ = [
    "max_sg_tree_bound",
    "diameter_phase_bound",
    "sum_asg_maxcost_bound",
    "nlogn",
]


def max_sg_tree_bound(n: int) -> float:
    """Theorem 2.1's explicit O(n^3) bound on MAX-SG tree convergence.

    ``N_n(T) <= sum_{i=3}^{n-1} D_{i,n}`` with
    ``D_{i,n} < (n*i - i^2)/2 + 1`` (Lemma 2.10 plus the
    diameter-decreasing step).
    """
    if n < 3:
        return 0.0
    return sum((n * i - i * i) / 2.0 + 1.0 for i in range(3, n))


def diameter_phase_bound(n: int, D: int) -> float:
    """Lemma 2.10: moves before a diameter-``D`` tree must shrink it."""
    return (n * D - D * D) / 2.0


def sum_asg_maxcost_bound(n: int) -> int:
    """Corollary 3.2's tight bound for the SUM-ASG + max cost policy."""
    if n % 2 == 0:
        return max(0, n - 3)
    return max(0, n + math.ceil(n / 2) - 5)


def nlogn(n: int) -> float:
    """The Theta(n log n) reference curve (natural log base 2)."""
    if n <= 1:
        return 0.0
    return n * math.log2(n)
