"""Theory of tree dynamics: bounds, potentials and instrumented runs."""

from . import bounds, tree_dynamics  # noqa: F401

__all__ = ["bounds", "tree_dynamics"]
