"""repro.statespace — exhaustive response-graph exploration.

Treats a ``(game, moveset, agent filter)`` triple as an explicit
transition system over network configurations:

* :mod:`.encode` — the canonical bit-packed state encoding and the
  repo-wide :func:`~repro.statespace.encode.state_key` content digest;
* :mod:`.expand` — deterministic memoized transition expansion priced
  through any :class:`~repro.graphs.incremental.DistanceBackend`;
* :mod:`.explore` — sharded, resumable frontier BFS + Tarjan SCC into
  an :class:`~repro.statespace.explore.ExplorationReport` (equilibria,
  best-response cycles, basin sizes, longest improving path);
* :mod:`.store` — kill-safe JSONL persistence in the campaign-store
  format.

Import discipline: :mod:`repro.core.dynamics` imports :mod:`.encode`
for the canonical state key, while :mod:`.expand`/:mod:`.explore`
import the core — so this package must not load them eagerly.  The
explorer names below resolve lazily (PEP 562) on first access.
"""

from __future__ import annotations

from .encode import decode_state, encode_state, packed_state, state_key, state_key_hex

__all__ = [
    # encode (eager — dependency-free of repro.core)
    "packed_state",
    "state_key",
    "state_key_hex",
    "encode_state",
    "decode_state",
    # expander / explorer / store (lazy — they import repro.core)
    "Expander",
    "Transition",
    "ResponseGraph",
    "ExplorationReport",
    "ExplorationStore",
    "enumerate_states",
    "explore",
    "verify_sinks",
]

_LAZY = {
    "Expander": ("repro.statespace.expand", "Expander"),
    "Transition": ("repro.statespace.expand", "Transition"),
    "ResponseGraph": ("repro.statespace.explore", "ResponseGraph"),
    "ExplorationReport": ("repro.statespace.explore", "ExplorationReport"),
    "ExplorationStore": ("repro.statespace.store", "ExplorationStore"),
    "enumerate_states": ("repro.statespace.explore", "enumerate_states"),
    "explore": ("repro.statespace.explore", "explore"),
    "verify_sinks": ("repro.statespace.explore", "verify_sinks"),
}


def __getattr__(name: str):
    target = _LAZY.get(name)
    if target is None:
        raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
    import importlib

    module = importlib.import_module(target[0])
    # Bind every lazy name this module serves, not just the requested
    # one.  Importing the ``.explore`` submodule sets the package
    # attribute ``explore`` to the *module*, shadowing the ``explore``
    # function of the same name; rebinding afterwards guarantees the
    # function wins.  ``import repro`` runs this path eagerly (the
    # top-level ``from .statespace import explore``), so the binding is
    # settled before any user code can observe the module instead.
    for lazy_name, (module_name, attr) in _LAZY.items():
        if module_name == target[0]:
            globals()[lazy_name] = getattr(module, attr)
    return globals()[name]


def __dir__():
    return sorted(set(globals()) | set(_LAZY))
