"""Canonical bit-packed state encoding for the response-graph explorer.

A *state* of the transition system is one network configuration
``G = (V, E, o)``.  This module owns the three canonical representations
every consumer shares:

* :func:`packed_state` — the raw bit-packed payload: the ownership
  matrix (or, for games where ownership is meaningless, the strict upper
  triangle of the adjacency matrix) packed 64 vertices per ``uint64``
  word through :func:`repro.graphs.bitkernel.pack_rows`.  ``n^2 / 8``
  bytes instead of the ``n^2`` bool bytes of ``Network.state_key`` —
  the explorer holds hundreds of thousands of these.
* :func:`state_key` — a fixed-size (16-byte) blake2b content digest of
  the packed payload plus the state notion and ``n``.  This is **the**
  canonical hashable state identity: the dynamics engine's cycle
  detector, :func:`repro.analysis.trajectories.annotate_cycle`, the
  classifier and the statespace explorer all key visited-state sets with
  it, so the notion of "same state" can never drift between subsystems.
* :func:`encode_state` / :func:`decode_state` — a lossless serialisable
  blob (``n`` header + packed ownership rows; adjacency is implied by
  ``A = O | O^T``), used by the exploration store to persist frontiers
  so a killed run resumes without recomputing a single expansion.

Like :mod:`repro.graphs.incremental`, this module is duck-typed over
networks (``.A`` / ``.owner`` arrays) and must not import
:mod:`repro.core` at module level — the core's dynamics engine imports
*us* for the canonical key.
"""

from __future__ import annotations

import hashlib
from typing import Optional, Sequence

import numpy as np

from ..graphs.bitkernel import pack_rows, unpack_rows

__all__ = [
    "packed_state",
    "state_key",
    "state_key_hex",
    "encode_state",
    "decode_state",
]

#: digest width of :func:`state_key`.  16 bytes keeps visited-state sets
#: compact while making collisions (2^-64 at a billion states) a
#: non-concern for the paper's state-space sizes.
DIGEST_SIZE = 16

#: serialisation-format version byte of :func:`encode_state` blobs.
_BLOB_VERSION = 1


def packed_state(net, with_ownership: bool = True) -> bytes:
    """Bit-packed canonical payload of a network state.

    With ``with_ownership`` the payload is the packed ownership matrix
    (the right state notion for the asymmetric games — two states with
    equal topology but different owners are different strategy
    profiles).  Without it, only the topology matters (the Swap Game's
    and bilateral game's notion): the packed strict upper triangle of
    the adjacency matrix.
    """
    if with_ownership:
        return pack_rows(np.asarray(net.owner, dtype=bool)).tobytes()
    return pack_rows(np.triu(np.asarray(net.A, dtype=bool), 1)).tobytes()


def state_key(net, with_ownership: bool = True) -> bytes:
    """The canonical 16-byte content digest of a network state.

    Pure function of ``(n, state notion, packed payload)`` — equal iff
    the states are equal under the chosen notion.  Every visited-state
    set in the repo (cycle detection, trajectory annotation, state-space
    exploration) uses this one helper.
    """
    h = hashlib.blake2b(digest_size=DIGEST_SIZE)
    h.update(int(net.A.shape[0]).to_bytes(4, "little"))
    h.update(b"o" if with_ownership else b"t")
    h.update(packed_state(net, with_ownership))
    return h.digest()


def state_key_hex(net, with_ownership: bool = True) -> str:
    """Hex rendering of :func:`state_key` (JSON stores and reports)."""
    return state_key(net, with_ownership).hex()


def encode_state(net) -> bytes:
    """Lossless blob of a network state (inverse: :func:`decode_state`).

    Layout: 1 version byte, 4-byte little-endian ``n``, then the packed
    ownership rows.  Ownership determines adjacency (``A = O | O^T``),
    so the blob always carries full information regardless of the state
    notion used for keying.
    """
    n = int(net.A.shape[0])
    return (
        bytes([_BLOB_VERSION])
        + n.to_bytes(4, "little")
        + pack_rows(np.asarray(net.owner, dtype=bool)).tobytes()
    )


def decode_state(blob: bytes, labels: Optional[Sequence[str]] = None):
    """Rebuild a :class:`~repro.core.network.Network` from a blob."""
    from ..core.network import Network  # deferred: core imports this module

    if not blob or blob[0] != _BLOB_VERSION:
        raise ValueError(
            f"not a statespace blob (version byte {blob[:1]!r}, "
            f"expected {_BLOB_VERSION})"
        )
    n = int.from_bytes(blob[1:5], "little")
    words = (n + 63) // 64
    payload = blob[5:]
    if len(payload) != n * words * 8:
        raise ValueError(
            f"blob payload is {len(payload)} bytes; expected {n * words * 8} "
            f"for n={n}"
        )
    packed = np.frombuffer(payload, dtype=np.uint64).reshape(n, words)
    # frombuffer yields a read-only view; the Network must stay mutable
    # (the expander applies moves in place), so materialise a copy
    owner = unpack_rows(packed, n).copy()
    A = owner | owner.T
    return Network(A, owner, labels=list(labels) if labels is not None else None)
