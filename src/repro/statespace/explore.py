"""Exhaustive response-graph exploration: equilibrium and cycle census.

The paper's core results are statements about the *whole* best-response
transition system — dynamics can cycle (Theorems 3.3/3.7), no potential
function exists, convergence is not guaranteed — yet trajectory sampling
(:func:`repro.core.dynamics.run_dynamics`) only ever sees single paths
through it.  :func:`explore` builds the transition system explicitly:

* **seeded** from one start network (the reachable component — what the
  paper's counterexample proofs construct by hand), or from *every*
  connected configuration at size ``n`` (:func:`enumerate_states` — the
  full state space, making the census genuinely exhaustive);
* **expanded** through :class:`~repro.statespace.expand.Expander`
  (memoized per ``(state, agent)``, priced through any
  :class:`~repro.graphs.incremental.DistanceBackend` — all backends
  produce the same graph bit for bit);
* **analysed** by an iterative Tarjan SCC pass into an
  :class:`ExplorationReport`: all equilibria (sinks), all best-response
  cycles (non-trivial SCCs, each with a deterministic replayable witness
  cycle), per-equilibrium basin sizes, and the longest improving path
  (exact adversarial convergence time on acyclic components).

Exploration is **kill-safe and shardable**: with a ``store`` the
frontier BFS appends one record per expanded state to the campaign-store
JSONL format (:mod:`.store`), so a killed run resumes with zero
recomputation and independent invocations with ``shard=(i, k)`` split
the frontier deterministically (state ``s`` belongs to the shard of its
key digest).  A shard drains only its own states; alternating shard
invocations converge to the full graph, and the finished report is a
pure function of the graph — byte-identical however the work was
scheduled, interrupted, or sharded.
"""

from __future__ import annotations

import json
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass, field
from itertools import combinations, product
from typing import Dict, List, Optional, Sequence, Tuple, Union

import numpy as np

from ..core.games import Game
from ..core.moves import move_from_dict
from ..core.network import Network
from ..graphs import adjacency as adj
from ..obs import metrics as obs_metrics
from ..obs import tracing as obs_tracing
from .encode import decode_state, encode_state
from .expand import AGENT_FILTERS, MOVESETS, Expander, ownership_matters
from .store import ExplorationStore, manifest_for

# frontier telemetry: one gauge write + one span per BFS layer, one
# counter add per batch of expansions — never per transition
_EXPANSIONS = obs_metrics.counter(
    "repro_explore_expansions_total",
    "Statespace expansions performed")
_FRONTIER_DEPTH = obs_metrics.gauge(
    "repro_explore_frontier_depth",
    "Pending-state count of the most recent frontier layer")

__all__ = [
    "DEFAULT_MAX_STATES",
    "ResponseGraph",
    "ExplorationReport",
    "enumerate_states",
    "explore",
    "verify_sinks",
]

DEFAULT_MAX_STATES = 200_000

#: enumeration guard: refuse state-space sizes that could never finish.
_MAX_ENUMERATION = 2_000_000

#: census size up to which the report also carries the greedy-equilibrium
#: scan for games whose full move set is not single-edge (BG, bilateral).
_GREEDY_SCAN_MAX = 20_000


# ---------------------------------------------------------------------------
# exhaustive state enumeration
# ---------------------------------------------------------------------------


def enumerate_states(
    n: int,
    with_ownership: bool = True,
    connected_only: bool = True,
) -> List[Network]:
    """Every network configuration on ``n`` labelled vertices.

    With ownership each unordered pair is absent / owned by the smaller
    endpoint / owned by the larger one (``3^C(n,2)`` raw assignments);
    without, pairs are absent/present with canonical smaller-endpoint
    ownership (``2^C(n,2)`` — the Swap Game's topology-only notion).

    ``connected_only`` keeps only connected configurations — the class
    the paper's processes live in, and one that improving-move dynamics
    never leave (a move disconnecting the mover has infinite distance
    cost, so it is never improving).
    """
    pairs = list(combinations(range(n), 2))
    choices = 3 if with_ownership else 2
    total = choices ** len(pairs)
    if total > _MAX_ENUMERATION:
        raise ValueError(
            f"state space of n={n} ({'ownership' if with_ownership else 'topology'}"
            f" notion) has {total} raw configurations; exhaustive enumeration "
            f"is capped at {_MAX_ENUMERATION} — seed from a start network instead"
        )
    out: List[Network] = []
    for assign in product(range(choices), repeat=len(pairs)):
        A = np.zeros((n, n), dtype=bool)
        O = np.zeros((n, n), dtype=bool)
        for (u, v), c in zip(pairs, assign):
            if c == 0:
                continue
            A[u, v] = A[v, u] = True
            if c == 1:
                O[u, v] = True
            else:
                O[v, u] = True
        if connected_only and not adj.is_connected(A):
            continue
        out.append(Network(A, O))
    return out


# ---------------------------------------------------------------------------
# the explicit response graph
# ---------------------------------------------------------------------------


@dataclass
class ResponseGraph:
    """The explored transition system, indexed by canonical state key."""

    #: state key -> state index
    index: Dict[bytes, int] = field(default_factory=dict)
    #: canonical key per state
    keys: List[bytes] = field(default_factory=list)
    #: lossless ``encode_state`` blob per state
    blobs: List[bytes] = field(default_factory=list)
    #: per state: ``None`` while unexpanded, else the transition list
    #: ``(agent, move dict, successor index)``
    transitions: List[Optional[List[Tuple[int, dict, int]]]] = field(default_factory=list)
    #: whether the state-count budget cut discovery short
    truncated: bool = False
    #: states whose expansion had edges dropped by the budget — their
    #: empty transition lists must not read as "equilibrium"
    clipped: set = field(default_factory=set)

    @property
    def n_states(self) -> int:
        return len(self.keys)

    @property
    def n_edges(self) -> int:
        return sum(len(t) for t in self.transitions if t is not None)

    def pending(self) -> List[int]:
        """Indices of discovered-but-unexpanded states."""
        return [i for i, t in enumerate(self.transitions) if t is None]

    @property
    def complete(self) -> bool:
        """Whether every discovered state has been expanded, untruncated."""
        return not self.truncated and all(t is not None for t in self.transitions)

    def intern(self, key: bytes, blob: bytes) -> int:
        idx = self.index.get(key)
        if idx is not None:
            return idx
        idx = len(self.keys)
        self.index[key] = idx
        self.keys.append(key)
        self.blobs.append(blob)
        self.transitions.append(None)
        return idx

    def network(self, i: int) -> Network:
        """Decoded representative network of state ``i``."""
        return decode_state(self.blobs[i])

    def successors(self, i: int) -> List[int]:
        """Distinct successor indices of an expanded state."""
        t = self.transitions[i]
        if t is None:
            raise ValueError(f"state {i} has not been expanded")
        return sorted({j for _, _, j in t})

    def sinks(self) -> List[int]:
        """Expanded states with no outgoing transition (equilibria).

        States whose expansion lost edges to the discovery budget are
        excluded — an artificially emptied transition list is not a
        Nash equilibrium.
        """
        return [
            i for i, t in enumerate(self.transitions)
            if t == [] and i not in self.clipped
        ]


# ---------------------------------------------------------------------------
# SCC / path analysis (iterative, explicit stacks)
# ---------------------------------------------------------------------------


def _tarjan_sccs(n: int, succ: List[List[int]]) -> List[List[int]]:
    """Strongly connected components, iteratively (no recursion limit)."""
    sccs: List[List[int]] = []
    indices = [-1] * n
    low = [0] * n
    on_stack = [False] * n
    stack: List[int] = []
    counter = 0
    for root in range(n):
        if indices[root] != -1:
            continue
        work: List[Tuple[int, int]] = [(root, 0)]
        while work:
            node, ptr = work[-1]
            if ptr == 0:
                indices[node] = low[node] = counter
                counter += 1
                stack.append(node)
                on_stack[node] = True
            advanced = False
            while ptr < len(succ[node]):
                nxt = succ[node][ptr]
                ptr += 1
                if indices[nxt] == -1:
                    work[-1] = (node, ptr)
                    work.append((nxt, 0))
                    advanced = True
                    break
                if on_stack[nxt]:
                    low[node] = min(low[node], indices[nxt])
            if advanced:
                continue
            if low[node] == indices[node]:
                comp = []
                while True:
                    w = stack.pop()
                    on_stack[w] = False
                    comp.append(w)
                    if w == node:
                        break
                sccs.append(comp)
            work.pop()
            if work:
                parent = work[-1][0]
                low[parent] = min(low[parent], low[node])
    return sccs


def _longest_path(n: int, succ: List[List[int]]) -> int:
    """Longest path (in moves) of an *acyclic* response graph."""
    color = [0] * n
    order: List[int] = []
    for root in range(n):
        if color[root] != 0:
            continue
        stack: List[Tuple[int, int]] = [(root, 0)]
        color[root] = 1
        while stack:
            node, ptr = stack[-1]
            if ptr < len(succ[node]):
                stack[-1] = (node, ptr + 1)
                nxt = succ[node][ptr]
                if color[nxt] == 0:
                    color[nxt] = 1
                    stack.append((nxt, 0))
            else:
                color[node] = 2
                order.append(node)
                stack.pop()
    dist = [0] * n
    best = 0
    for node in order:  # reverse topological order
        for nxt in succ[node]:
            dist[node] = max(dist[node], 1 + dist[nxt])
        best = max(best, dist[node])
    return best


def _witness_cycle(
    graph: ResponseGraph, scc: List[int]
) -> List[dict]:
    """A deterministic replayable cycle inside one non-trivial SCC.

    Anchored at the member with the lexicographically smallest state
    key; BFS inside the SCC (layers and neighbours visited in key
    order) finds the shortest cycle through the anchor, and each hop is
    labelled with the canonically-first transition between its
    endpoints — so the witness depends only on the graph, never on
    discovery order.
    """
    members = set(scc)
    keys = graph.keys

    def inner_succ(i: int) -> List[int]:
        return sorted(
            {j for _, _, j in graph.transitions[i] if j in members},
            key=lambda j: keys[j],
        )

    anchor = min(scc, key=lambda i: keys[i])
    parent: Dict[int, int] = {anchor: -1}
    layer = [anchor]
    closer = None
    while layer and closer is None:
        nxt_layer: List[int] = []
        for i in sorted(layer, key=lambda i: keys[i]):
            for j in inner_succ(i):
                if j == anchor:
                    closer = i
                    break
                if j not in parent:
                    parent[j] = i
                    nxt_layer.append(j)
            if closer is not None:
                break
        layer = nxt_layer
    if closer is None:  # pragma: no cover - an SCC always has a cycle
        raise RuntimeError("non-trivial SCC without a cycle")
    path = [closer]
    while path[-1] != anchor:
        path.append(parent[path[-1]])
    path.reverse()  # anchor .. closer
    hops = list(zip(path, path[1:] + [anchor]))

    def first_label(i: int, j: int) -> Tuple[int, dict]:
        for agent, move, k in graph.transitions[i]:
            if k == j:
                return agent, move
        raise RuntimeError("missing transition for witness hop")

    steps = []
    for i, j in hops:
        agent, move = first_label(i, j)
        steps.append(
            {
                "from": keys[i].hex(),
                "agent": int(agent),
                "move": move,
                "to": keys[j].hex(),
            }
        )
    return steps


# ---------------------------------------------------------------------------
# the report
# ---------------------------------------------------------------------------

REPORT_VERSION = 1


@dataclass
class ExplorationReport:
    """Census of one explored response graph.

    All state references are canonical key hex digests; every field is
    a pure function of the graph (never of discovery order), so two
    explorations of the same triple — resumed, sharded, or run under
    different distance backends — serialize to identical bytes.
    """

    game: str
    mode: str
    alpha: float
    n: int
    moves: str
    agent_filter: str
    n_states: int
    n_edges: int
    #: sorted state-key hexes of all sinks — pure Nash equilibria under
    #: ``moves="best"|"improving"``, greedy equilibria under ``"greedy"``
    equilibria: List[str] = field(default_factory=list)
    #: sorted state-key hexes of all *greedy* equilibria (GE: no agent
    #: has an improving single-edge deviation; NE ⊆ GE always).  ``None``
    #: when the census is partial/truncated or too large to scan.
    greedy_equilibria: Optional[List[str]] = None
    #: equilibrium hex -> number of states from which it is reachable
    basin_sizes: Dict[str, int] = field(default_factory=dict)
    #: non-trivial SCCs: {"states": sorted hexes, "witness": replayable steps}
    cycles: List[dict] = field(default_factory=list)
    #: longest improving-move sequence; ``None`` when cycles make it unbounded
    longest_improving_path: Optional[int] = None
    #: whether every discovered state was expanded (False for a drained
    #: shard whose siblings still hold pending states)
    complete: bool = True
    #: discovered-but-unexpanded states (0 when complete)
    pending: int = 0
    truncated: bool = False
    version: int = REPORT_VERSION
    #: the underlying graph (in-memory only; dropped from JSON)
    graph: Optional[ResponseGraph] = field(default=None, repr=False, compare=False)

    @property
    def n_equilibria(self) -> int:
        return len(self.equilibria)

    @property
    def n_greedy_equilibria(self) -> Optional[int]:
        return None if self.greedy_equilibria is None else len(self.greedy_equilibria)

    @property
    def has_cycle(self) -> bool:
        return bool(self.cycles)

    def to_json(self) -> dict:
        return {
            "version": self.version,
            "game": self.game,
            "mode": self.mode,
            "alpha": self.alpha,
            "n": self.n,
            "moves": self.moves,
            "agent_filter": self.agent_filter,
            "n_states": self.n_states,
            "n_edges": self.n_edges,
            "equilibria": list(self.equilibria),
            "greedy_equilibria": (
                None if self.greedy_equilibria is None else list(self.greedy_equilibria)
            ),
            "basin_sizes": dict(self.basin_sizes),
            "cycles": list(self.cycles),
            "longest_improving_path": self.longest_improving_path,
            "complete": self.complete,
            "pending": self.pending,
            "truncated": self.truncated,
        }

    def json_bytes(self) -> bytes:
        """Canonical serialization (sorted keys, compact separators) —
        the byte-identity surface of the resume/shard guarantees."""
        return json.dumps(self.to_json(), sort_keys=True,
                          separators=(",", ":")).encode()

    @classmethod
    def from_json(cls, payload: dict) -> "ExplorationReport":
        known = {f for f in cls.__dataclass_fields__} - {"graph"}
        data = {k: v for k, v in payload.items() if k in known}
        return cls(**data)

    def summary(self, max_listed: int = 10) -> str:
        """One-paragraph human rendering for the CLI.

        Large censuses list only the first ``max_listed`` equilibria and
        cycles (the full sets live in the canonical JSON report).
        """
        state = "complete" if self.complete else f"partial ({self.pending} pending)"
        lines = [
            f"{self.game}/{self.mode} n={self.n} ({self.moves} moves, "
            f"movers={self.agent_filter}): {self.n_states} states, "
            f"{self.n_edges} transitions [{state}]"
            + (" [truncated]" if self.truncated else ""),
            f"  equilibria: {self.n_equilibria}",
        ]
        for eq in self.equilibria[:max_listed]:
            lines.append(f"    {eq}  basin={self.basin_sizes.get(eq, 0)}")
        if self.n_equilibria > max_listed:
            lines.append(f"    … and {self.n_equilibria - max_listed} more "
                         "(see report.json)")
        if self.greedy_equilibria is not None:
            lines.append(
                f"  greedy equilibria (GE): {len(self.greedy_equilibria)}"
            )
        if self.cycles:
            lines.append(f"  best-response cycles (non-trivial SCCs): {len(self.cycles)}")
            for c in self.cycles[:max_listed]:
                lines.append(
                    f"    {len(c['states'])} states, witness length {len(c['witness'])}"
                )
            if len(self.cycles) > max_listed:
                lines.append(f"    … and {len(self.cycles) - max_listed} more")
        else:
            lines.append("  best-response cycles: none")
        if self.longest_improving_path is not None:
            lines.append(f"  longest improving path: {self.longest_improving_path}")
        else:
            lines.append("  longest improving path: unbounded (cycles present)")
        return "\n".join(lines)


def build_report(
    graph: ResponseGraph,
    game: Game,
    moves: str,
    agent_filter: str,
    n: int,
    game_name: Optional[str] = None,
) -> ExplorationReport:
    """Analyse an explored graph into its census report."""
    expanded = [i for i, t in enumerate(graph.transitions) if t is not None]
    succ: List[List[int]] = [
        (graph.successors(i) if graph.transitions[i] is not None else [])
        for i in range(graph.n_states)
    ]
    sinks = graph.sinks()
    keys = graph.keys

    sccs = _tarjan_sccs(graph.n_states, succ)
    nontrivial = [c for c in sccs if len(c) > 1]
    cycles = sorted(
        (
            {
                "states": sorted(keys[i].hex() for i in comp),
                "witness": _witness_cycle(graph, comp),
            }
            for comp in nontrivial
        ),
        key=lambda c: c["states"][0],
    )

    # basin of an equilibrium: states that can reach it (reverse BFS)
    rev: List[List[int]] = [[] for _ in range(graph.n_states)]
    for i in expanded:
        for j in succ[i]:
            rev[j].append(i)
    basin_sizes: Dict[str, int] = {}
    for s in sinks:
        seen = {s}
        stack = [s]
        while stack:
            i = stack.pop()
            for j in rev[i]:
                if j not in seen:
                    seen.add(j)
                    stack.append(j)
        basin_sizes[keys[s].hex()] = len(seen)

    longest = None if nontrivial else _longest_path(graph.n_states, succ)

    # greedy equilibria (GE) alongside the sinks.  A pure function of
    # (graph, game rules), never of discovery order:
    # * under moves="greedy" the sinks *are* the GE;
    # * games whose full move set is single-edge have GE == NE == sinks;
    # * otherwise (BG, bilateral) a brute single-edge-deviation scan over
    #   the states, run only on complete, untruncated, small censuses so
    #   a half-drained shard never reports a scheduling-dependent set.
    greedy_eq: Optional[List[str]] = None
    if moves == "greedy" or game.moves_are_greedy():
        greedy_eq = sorted(keys[s].hex() for s in sinks)
    elif graph.complete and not graph.truncated and graph.n_states <= _GREEDY_SCAN_MAX:
        greedy_eq = sorted(
            keys[i].hex()
            for i in range(graph.n_states)
            if game.is_greedy_stable(graph.network(i))
        )

    pending = len(graph.pending())
    return ExplorationReport(
        game=game_name or getattr(game, "name", type(game).__name__),
        mode=game.mode.value,
        alpha=float(game.alpha),
        n=int(n),
        moves=moves,
        agent_filter=agent_filter,
        n_states=graph.n_states,
        n_edges=graph.n_edges,
        equilibria=sorted(keys[s].hex() for s in sinks),
        greedy_equilibria=greedy_eq,
        basin_sizes=basin_sizes,
        cycles=cycles,
        longest_improving_path=longest,
        complete=graph.complete,
        pending=pending,
        truncated=graph.truncated,
        graph=graph,
    )


# ---------------------------------------------------------------------------
# the explorer
# ---------------------------------------------------------------------------


def _shard_of(key: bytes, k: int) -> int:
    """Deterministic shard assignment of a state key."""
    return int.from_bytes(key[:8], "big") % k


def _expand_chunk(args) -> List[Tuple[str, List[list], List[Tuple[str, str]]]]:
    """Worker body: expand a chunk of states with a fresh expander.

    Returns, per state, ``(key hex, succ rows, successor (key, blob)
    hex pairs)``.  Expansion is deterministic, so worker-local memo
    state affects speed only.
    """
    game, moves, agent_filter, backend_spec, chunk = args
    expander = Expander(game, moves=moves, agent_filter=agent_filter,
                        backend=backend_spec)
    out = []
    for key_hex, blob_hex in chunk:
        blob = bytes.fromhex(blob_hex)
        net = decode_state(blob)
        key = bytes.fromhex(key_hex)
        rows: List[list] = []
        succs: List[Tuple[str, str]] = []
        for t, succ_net in expander.expand_with_successors(net, key):
            rows.append([int(t.agent), t.move_dict(), t.succ_key.hex()])
            succs.append((t.succ_key.hex(), encode_state(succ_net).hex()))
        out.append((key_hex, rows, succs))
    return out


def explore(
    game: Game,
    start: Optional[Network] = None,
    *,
    n: Optional[int] = None,
    moves: str = "best",
    agent_filter: str = "all",
    backend: Union[str, None] = None,
    max_states: int = DEFAULT_MAX_STATES,
    store: Union[ExplorationStore, str, None] = None,
    shard: Tuple[int, int] = (0, 1),
    max_expansions: Optional[int] = None,
    n_jobs: int = 1,
    game_name: Optional[str] = None,
) -> ExplorationReport:
    """Explore the response graph of ``(game, moves, agent_filter)``.

    Parameters
    ----------
    start / n:
        exactly one must be given.  ``start`` seeds the frontier with
        one network (the reachable component); ``n`` seeds it with
        *every* connected configuration on ``n`` vertices
        (:func:`enumerate_states`) — the exhaustive census.
    moves / agent_filter:
        the transition rules (see :mod:`.expand`).
    backend:
        distance engine spec; all backends yield bit-identical graphs.
    max_states:
        discovery budget; exceeding it drops further new states and
        marks the report ``truncated`` (conclusions are then partial).
    store:
        an :class:`~repro.statespace.store.ExplorationStore` (or a
        directory path) for kill-safe resumable exploration.  Stored
        expansions are loaded first and never recomputed.
    shard:
        ``(i, k)`` — expand only states whose key digest falls in shard
        ``i``.  Successors owned by other shards are left pending; the
        report of a lone shard invocation is marked incomplete until
        every shard has drained (alternate or parallelise invocations
        over the same store).
    max_expansions:
        cap on *new* expansions this invocation (drain in slices).
    n_jobs:
        worker processes per BFS layer (1 = serial in-process, keeping
        one warm memoized expander).
    """
    if (start is None) == (n is None):
        raise ValueError("pass exactly one of start= or n=")
    if moves not in MOVESETS:
        raise ValueError(f"moves must be one of {MOVESETS}, got {moves!r}")
    if agent_filter not in AGENT_FILTERS:
        raise ValueError(
            f"agent_filter must be one of {AGENT_FILTERS}, got {agent_filter!r}"
        )
    i_shard, k_shard = shard
    if not (0 <= i_shard < k_shard):
        raise ValueError(f"shard must satisfy 0 <= i < k, got {i_shard}/{k_shard}")
    if n_jobs > 1 and backend is not None and not isinstance(backend, str):
        raise ValueError("n_jobs > 1 requires a string backend spec "
                         "(backends are rebuilt inside worker processes)")

    expander = Expander(game, moves=moves, agent_filter=agent_filter, backend=backend)
    with_ownership = expander.with_ownership

    if start is not None:
        seeds = [start]
        size = start.n
    else:
        seeds = enumerate_states(n, with_ownership=with_ownership)
        size = n

    graph = ResponseGraph()
    seed_keys = []
    for net in seeds:
        key = expander.key(net)
        # the manifest fingerprint covers the *requested* seed set even
        # when the budget cuts discovery short, so a resume with a
        # different budget is a loud mismatch, not silent drift
        seed_keys.append(key)
        if key not in graph.index and graph.n_states >= max_states:
            graph.truncated = True
            continue
        graph.intern(key, encode_state(net))

    store_obj: Optional[ExplorationStore] = None
    writer = None
    if store is not None:
        store_obj = store if isinstance(store, ExplorationStore) else ExplorationStore(store)
        store_obj.ensure_manifest(
            manifest_for(game, moves, agent_filter, size, seed_keys, max_states)
        )
        # replay stored expansions: intern parents, record transitions,
        # and intern successors (their blobs derive from parent + move)
        for key_hex, rec in sorted(store_obj.expanded_rows().items()):
            key = bytes.fromhex(key_hex)
            blob = bytes.fromhex(rec["state"])
            idx = graph.intern(key, blob)
            if graph.transitions[idx] is not None:
                continue
            parent = decode_state(blob)
            trans: List[Tuple[int, dict, int]] = []
            for agent, move_dict, succ_hex in rec["succ"]:
                succ_key = bytes.fromhex(succ_hex)
                j = graph.index.get(succ_key)
                if j is None:
                    if graph.n_states >= max_states:
                        graph.truncated = True
                        graph.clipped.add(idx)
                        continue
                    succ_net = parent.copy()
                    move_from_dict(move_dict).apply(succ_net)
                    j = graph.intern(succ_key, encode_state(succ_net))
                trans.append((int(agent), move_dict, j))
            graph.transitions[idx] = trans

    expansions = 0
    budget_hit = False
    try:
        while True:
            pending = [
                i for i in graph.pending()
                if _shard_of(graph.keys[i], k_shard) == i_shard
            ]
            if not pending or budget_hit:
                break
            _FRONTIER_DEPTH.set(len(pending))
            pending.sort(key=lambda i: graph.keys[i])
            if max_expansions is not None:
                room = max_expansions - expansions
                if room <= 0:
                    budget_hit = True
                    break
                pending = pending[:room]

            with obs_tracing.span("explore.layer", pending=len(pending)):
                if n_jobs > 1 and len(pending) > 1:
                    jobs = max(1, min(int(n_jobs), len(pending)))
                    chunks = [
                        [(graph.keys[i].hex(), graph.blobs[i].hex()) for i in pending[c::jobs]]
                        for c in range(jobs)
                    ]
                    args = [
                        (game, moves, agent_filter, backend, chunk)
                        for chunk in chunks if chunk
                    ]
                    with ProcessPoolExecutor(max_workers=jobs) as pool:
                        results = [r for batch in pool.map(_expand_chunk, args) for r in batch]
                    results.sort(key=lambda r: r[0])
                else:
                    # serial path: one persistent expander keeps its
                    # (state, agent) memo and backend caches warm across layers
                    results = []
                    for i in pending:
                        net = decode_state(graph.blobs[i])
                        rows: List[list] = []
                        succs: List[Tuple[str, str]] = []
                        for t, succ_net in expander.expand_with_successors(
                            net, graph.keys[i]
                        ):
                            rows.append([int(t.agent), t.move_dict(), t.succ_key.hex()])
                            succs.append((t.succ_key.hex(), encode_state(succ_net).hex()))
                        results.append((graph.keys[i].hex(), rows, succs))
            _EXPANSIONS.inc(len(results))

            for key_hex, rows, succs in results:
                idx = graph.index[bytes.fromhex(key_hex)]
                trans: List[Tuple[int, dict, int]] = []
                for (agent, move_dict, succ_hex), (s_hex, s_blob_hex) in zip(rows, succs):
                    succ_key = bytes.fromhex(succ_hex)
                    j = graph.index.get(succ_key)
                    if j is None:
                        if graph.n_states >= max_states:
                            graph.truncated = True
                            graph.clipped.add(idx)
                            continue
                        j = graph.intern(succ_key, bytes.fromhex(s_blob_hex))
                    trans.append((int(agent), move_dict, j))
                graph.transitions[idx] = trans
                expansions += 1
                if store_obj is not None:
                    if writer is None:
                        writer = store_obj.open_writer((i_shard, k_shard))
                    store_obj.append(writer, {"key": key_hex,
                                              "state": graph.blobs[idx].hex(),
                                              "succ": rows})
    finally:
        if writer is not None:
            writer.close()

    report = build_report(graph, game, moves, agent_filter, size, game_name=game_name)
    return report


def verify_sinks(report: ExplorationReport, game: Game) -> None:
    """Cross-validate the census against the stability oracle.

    Asserts that the explorer's sink set equals the brute-force
    stability scan over *every* explored state — under the report's own
    stability notion: :func:`repro.analysis.equilibria.is_stable` (pure
    NE) for ``moves="best"|"improving"``, and the single-edge-deviation
    oracle :meth:`~repro.core.games.Game.is_greedy_stable` (GE) for
    ``moves="greedy"``.  When the report carries a
    ``greedy_equilibria`` census it is additionally checked to contain
    every pure NE (NE ⊆ GE).  Raises ``AssertionError`` with the
    offending state keys on any disagreement — used by the test harness
    and available to callers as a self-check.
    """
    from ..analysis.equilibria import is_stable

    graph = report.graph
    if graph is None:
        raise ValueError("report carries no in-memory graph to verify")
    if report.moves == "greedy":
        oracle = lambda net: game.is_greedy_stable(net)  # noqa: E731
    else:
        oracle = lambda net: is_stable(game, net)  # noqa: E731
    brute = {
        graph.keys[i].hex()
        for i in range(graph.n_states)
        if graph.transitions[i] is not None and oracle(graph.network(i))
    }
    explored = set(report.equilibria)
    if brute != explored:
        raise AssertionError(
            f"sink census disagrees with brute-force stability: "
            f"explorer-only={sorted(explored - brute)} "
            f"brute-only={sorted(brute - explored)}"
        )
    if report.greedy_equilibria is not None and report.moves != "greedy":
        ne_only = explored - set(report.greedy_equilibria)
        if ne_only:
            raise AssertionError(
                f"NE ⊆ GE violated: pure equilibria missing from the greedy "
                f"census: {sorted(ne_only)}"
            )
