"""Transition expander: price all agents' moves out of one state.

The explorer treats a ``(game, moveset, agent filter)`` triple as a
transition system over network configurations; this module computes one
state's outgoing transitions.  Everything is deterministic — moves come
out in the games' canonical order (agents ascending, the GBG operation
preference inside each best-response set) — so exploration is exactly
reproducible across resumes, shards and worker processes.

* ``moves="best"`` expands each agent's full best-response set (the
  paper's best-response dynamics: any tie-break rule's trajectory is a
  path in this graph).
* ``moves="improving"`` expands *every* strictly improving move (the
  better-response digraph of the FIPG/WAG classification).
* ``moves="greedy"`` expands every strictly improving *single-edge*
  deviation (buy one / delete one / swap one edge) — Lenzner's greedy
  dynamics; the sinks of this graph are the greedy equilibria (GE),
  a superset of the pure NE.

The *agent filter* is the policy-moveset axis: which unhappy agents the
activation discipline would ever let move.  ``"all"`` is the full
response graph; ``"maxcost"`` restricts movers to the highest-cost
unhappy agents (every tie-break of the paper's max cost policy is then
a path in the restricted graph); ``"first_unhappy"`` keeps only the
smallest-index unhappy agent (that policy's deterministic process).

Expansion is memoized per ``(state key, agent)`` — frontier BFS reaches
the same state through many predecessors, and shard files replayed on
resume revisit states freely; each (state, agent) pair is priced through
the :class:`~repro.graphs.incremental.DistanceBackend` exactly once per
expander.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple, Union

from ..core.games import EPS, Game
from ..core.moves import Move, move_to_dict
from ..core.network import Network
from ..graphs.incremental import DistanceBackend, make_backend
from .encode import state_key

__all__ = [
    "AGENT_FILTERS",
    "MOVESETS",
    "Transition",
    "Expander",
    "ownership_matters",
]

MOVESETS = ("best", "improving", "greedy")
AGENT_FILTERS = ("all", "maxcost", "first_unhappy")


def ownership_matters(game: Game) -> bool:
    """The state notion of a game (see ``instances.verify``): ownership
    is part of the strategy profile in the asymmetric games, meaningless
    in the SG and the bilateral game."""
    from ..instances.verify import _ownership_matters

    return _ownership_matters(game)


@dataclass(frozen=True)
class Transition:
    """One directed edge of the response graph."""

    agent: int
    move: Move
    #: canonical :func:`~repro.statespace.encode.state_key` of the successor
    succ_key: bytes

    def move_dict(self) -> dict:
        """JSON form of the move (stable, see ``move_to_dict``)."""
        return move_to_dict(self.move)


class Expander:
    """Deterministic, memoized successor enumeration for one triple.

    Parameters
    ----------
    game:
        the game whose move rules define the transitions.
    moves:
        ``"best"`` (best-response graph), ``"improving"``
        (better-response graph) or ``"greedy"`` (improving single-edge
        deviations — greedy-equilibrium dynamics).
    agent_filter:
        ``"all"`` | ``"maxcost"`` | ``"first_unhappy"`` — which unhappy
        agents may move (see the module docstring).
    backend:
        distance engine spec (``"dense"`` | ``"incremental"`` | a
        prebuilt backend | ``None`` = dense).  All backends produce
        bit-identical transitions; the choice is purely performance.
    """

    def __init__(
        self,
        game: Game,
        moves: str = "best",
        agent_filter: str = "all",
        backend: Union[str, DistanceBackend, None] = None,
    ):
        if moves not in MOVESETS:
            raise ValueError(f"moves must be one of {MOVESETS}, got {moves!r}")
        if agent_filter not in AGENT_FILTERS:
            raise ValueError(
                f"agent_filter must be one of {AGENT_FILTERS}, got {agent_filter!r}"
            )
        self.game = game
        self.moves = moves
        self.agent_filter = agent_filter
        self.backend = make_backend(backend)
        self.with_ownership = ownership_matters(game)
        #: (state key, agent) -> tuple of that agent's moves in the state
        self._agent_memo: Dict[Tuple[bytes, int], Tuple[Move, ...]] = {}
        self.memo_hits = 0
        self.memo_misses = 0

    # -- keys --------------------------------------------------------------
    def key(self, net: Network) -> bytes:
        """The canonical state key under this game's state notion."""
        return state_key(net, with_ownership=self.with_ownership)

    # -- per-agent moves ---------------------------------------------------
    def _moves_for(self, key: bytes, net: Network, u: int) -> Tuple[Move, ...]:
        memo_key = (key, u)
        hit = self._agent_memo.get(memo_key)
        if hit is not None:
            self.memo_hits += 1
            return hit
        self.memo_misses += 1
        if self.moves == "best":
            out = tuple(self.game.best_responses(net, u, backend=self.backend).moves)
        elif self.moves == "greedy":
            out = tuple(
                m for m, _ in self.game.greedy_improving_moves(net, u, backend=self.backend)
            )
        else:
            out = tuple(m for m, _ in self.game.improving_moves(net, u, backend=self.backend))
        self._agent_memo[memo_key] = out
        return out

    def _movers(self, net: Network, unhappy: List[int]) -> List[int]:
        """Apply the agent filter to the unhappy set."""
        if not unhappy or self.agent_filter == "all":
            return unhappy
        if self.agent_filter == "first_unhappy":
            return [unhappy[0]]
        # maxcost: every unhappy agent whose current cost ties the max
        # (each is a possible pick of the paper's max cost policy)
        costs = {u: self.game.current_cost(net, u, backend=self.backend) for u in unhappy}
        top = max(costs.values())
        return [u for u in unhappy if costs[u] >= top - EPS]

    # -- expansion ---------------------------------------------------------
    def expand(self, net: Network, key: Optional[bytes] = None) -> List[Transition]:
        """All outgoing transitions of ``net``, in canonical order.

        An empty list means the state is a sink — a pure Nash
        equilibrium under the configured moveset and agent filter.
        """
        return [t for t, _ in self.expand_with_successors(net, key)]

    def expand_with_successors(
        self, net: Network, key: Optional[bytes] = None
    ) -> List[Tuple[Transition, Network]]:
        """:meth:`expand` plus each transition's successor network.

        The successor is materialised anyway to compute its key; the
        explorer needs it again for the persisted blob, so handing it
        back avoids a second copy-and-apply per edge.
        """
        if key is None:
            key = self.key(net)
        unhappy = [
            u for u in range(net.n) if self._moves_for(key, net, u)
        ]
        out: List[Tuple[Transition, Network]] = []
        for u in self._movers(net, unhappy):
            for move in self._moves_for(key, net, u):
                succ = net.copy()
                move.apply(succ)
                out.append((Transition(u, move, self.key(succ)), succ))
        return out

    def stats(self) -> Dict[str, int]:
        """Memoization counters (plus the backend's own instrumentation)."""
        return {"memo_hits": self.memo_hits, "memo_misses": self.memo_misses}
