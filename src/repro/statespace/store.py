"""Durable, resumable, sharded persistence for response-graph exploration.

Reuses the campaign store's format discipline
(:class:`~repro.experiments.campaign.CampaignStore`): a validated
``manifest.json`` identity plus append-only ``states-<i>of<k>.jsonl``
record files whose torn final line (a kill mid-append) is ignored on
load and stitched over on the next append.

One record per *expanded* state::

    {"key":   "<32 hex chars>",          # canonical state_key
     "state": "<hex blob>",              # lossless encode_state payload
     "succ":  [[agent, move_dict, succ_key_hex], ...]}

Expansion is deterministic — a state's successor list is a pure function
of the (game, moveset, agent filter) triple — so records written by any
invocation, shard, or worker process are interchangeable: resume skips
every stored state with zero recomputation, and the union of shard files
is exactly the unsharded exploration.
"""

from __future__ import annotations

import hashlib
from typing import Dict, List

from ..experiments.campaign import CampaignMismatch, CampaignStore

__all__ = ["ExplorationStore", "STORE_VERSION", "CampaignMismatch"]

STORE_VERSION = 1


class ExplorationStore(CampaignStore):
    """Append-only JSONL store of one exploration directory."""

    RECORD_PREFIX = "states"
    REQUIRED_KEYS = frozenset({"key", "state", "succ"})
    KIND = "exploration"

    def expanded_rows(self) -> Dict[str, dict]:
        """``key hex -> stored record`` across every shard file.

        Duplicate keys (two shards racing on the same state, or a resume
        overlapping a half-written layer) keep the first occurrence —
        expansions are deterministic, so duplicates are identical
        anyway.  Reads through :meth:`iter_all_records`, so a compacted
        (even pruned) store replays without touching JSONL.
        """
        out: Dict[str, dict] = {}
        for rec in self.iter_all_records():
            out.setdefault(rec["key"], rec)
        return out

    def status(self, seed_keys=None) -> dict:
        """Cheap progress counters straight off the record rows.

        Counts expanded states and discovered-but-unexpanded keys
        without decoding a single state blob, pricing a single move, or
        building the response graph — what ``repro explore --status``
        reads.  Pass ``seed_keys`` (hex digests of the exploration's
        seed states — hashing them costs no best-response pricing) to
        make ``pending``/``complete`` exact; without them, seeds no
        stored row references yet are invisible and ``pending`` is a
        lower bound.
        """
        expanded = set()
        discovered = set()
        for rec in self.iter_all_records():
            expanded.add(rec["key"])
            for _, _, succ_hex in rec["succ"]:
                discovered.add(succ_hex)
        if seed_keys is not None:
            discovered.update(seed_keys)
        pending = discovered - expanded
        return {
            "expanded": len(expanded),
            "discovered": len(expanded | discovered),
            "pending": len(pending),
            "complete": bool(expanded) and not pending,
        }


def manifest_for(
    game,
    moves: str,
    agent_filter: str,
    n: int,
    seed_keys: List[bytes],
    max_states: int,
) -> dict:
    """The store's identity manifest.

    Two explorations share a directory iff they would expand identical
    graphs: same game *rules* (digested from
    :meth:`~repro.core.games.Game.cache_token`, which covers mode,
    alpha, host graph and enumeration caps), same moveset and agent
    filter, and the same seed state set.
    """
    fp = hashlib.blake2b(digest_size=8)
    for key in sorted(seed_keys):
        fp.update(key)
    return {
        "version": STORE_VERSION,
        "kind": "statespace",
        "game": {
            "type": type(game).__name__,
            "mode": game.mode.value,
            "alpha": game.alpha,
            "rules": hashlib.blake2b(
                repr(game.cache_token()).encode(), digest_size=8
            ).hexdigest(),
        },
        "moves": moves,
        "agent_filter": agent_filter,
        "n": int(n),
        "seeds": len(seed_keys),
        "seed_fingerprint": fp.hexdigest(),
        "max_states": int(max_states),
    }


def write_report(store: ExplorationStore, report) -> None:
    """Persist the finished report as ``report.json`` (canonical bytes)."""
    path = store.root / "report.json"
    tmp = path.with_suffix(".tmp")
    tmp.write_bytes(report.json_bytes())
    tmp.replace(path)
