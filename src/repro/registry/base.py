"""Component registry: named, schema-typed experiment building blocks.

The empirical surface of the reproduction is a grid over orthogonal
axes — *which game*, *which move policy*, *which activation model
(dynamics kind)*, *which initial-topology generator*, and *which
per-trial metrics to report*.  Each axis is a :class:`Registry`
category; components register under a stable name with a typed
parameter schema (:class:`Param`) and a factory.  A
:class:`~repro.registry.scenario.ScenarioSpec` then names one component
per axis plus validated parameters, and everything downstream (the
sweep runner, the campaign store, the CLI) instantiates through the
registry instead of hand-rolled ``if``-chains.

Adding a component is one call::

    from repro.registry import REGISTRY, Param

    @REGISTRY.register("metric", "leaves", doc="leaf count of the final network")
    def _leaves():
        return lambda ctx: int((ctx.outcome.final.A.sum(axis=1) == 1).sum())

Schemas are validated *before* the factory runs: unknown parameter
names, missing required parameters, type mismatches and out-of-choice
values all raise ``ValueError`` with the declared schema in the
message, so a typo in a JSON spec or a ``--param`` flag fails loudly at
spec construction, not deep inside a worker process.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Mapping, Optional, Sequence, Tuple

__all__ = [
    "Param",
    "Component",
    "Registry",
    "REGISTRY",
    "CATEGORIES",
]

#: the axes of one experiment scenario, in presentation order, plus the
#: ``workload`` category: whole-state-space analyses (e.g. the
#: statespace explorer) that consume a game rather than ride a scenario.
CATEGORIES: Tuple[str, ...] = (
    "game", "policy", "dynamics", "topology", "metric", "workload"
)

#: sentinel distinguishing "no default" (required) from "defaults to None".
_REQUIRED = object()


@dataclass(frozen=True)
class Param:
    """One declared parameter of a component.

    ``kind`` is the wire type — ``"int" | "float" | "str" | "bool"``.
    Values arriving as strings (JSON round-trips through the CLI's
    ``--param k=v`` flags are all strings) are coerced to the declared
    kind; anything incoercible raises ``ValueError``.  ``choices``
    restricts the coerced value to an explicit set.  ``check`` is an
    optional extra validator called with the coerced value (raise
    ``ValueError`` to reject) — for constraints a type and choice set
    cannot express, e.g. numeric ranges or names that must resolve in
    the registry; it runs at spec construction, preserving the
    fail-before-any-worker guarantee.  ``sample`` is a valid example
    value used by docs, ``repro scenarios`` output and the exhaustive
    round-trip tests.
    """

    name: str
    kind: str = "str"
    default: Any = _REQUIRED
    choices: Optional[Tuple[Any, ...]] = None
    doc: str = ""
    sample: Any = None
    check: Optional[Callable[[Any], None]] = None

    def __post_init__(self) -> None:
        if self.kind not in ("int", "float", "str", "bool"):
            raise ValueError(f"unknown param kind {self.kind!r}")

    @property
    def required(self) -> bool:
        """Whether the parameter has no default and must be given."""
        return self.default is _REQUIRED

    def coerce(self, value: Any) -> Any:
        """Coerce ``value`` to the declared kind (ValueError if impossible)."""
        try:
            if self.kind == "int":
                if isinstance(value, bool):
                    raise ValueError
                return int(value)
            if self.kind == "float":
                if isinstance(value, bool):
                    raise ValueError
                return float(value)
            if self.kind == "bool":
                if isinstance(value, bool):
                    return value
                if isinstance(value, str) and value.lower() in ("true", "1", "yes"):
                    return True
                if isinstance(value, str) and value.lower() in ("false", "0", "no"):
                    return False
                raise ValueError
            return str(value)
        except (TypeError, ValueError):
            raise ValueError(
                f"parameter {self.name!r} expects {self.kind}, got {value!r}"
            ) from None

    def validate(self, value: Any) -> Any:
        """Coerce and choice-check one value."""
        coerced = self.coerce(value)
        if self.choices is not None and coerced not in self.choices:
            raise ValueError(
                f"parameter {self.name!r} must be one of "
                f"{', '.join(map(repr, self.choices))}; got {coerced!r}"
            )
        if self.check is not None:
            try:
                self.check(coerced)
            except ValueError as exc:
                raise ValueError(f"parameter {self.name!r}: {exc}") from None
        return coerced

    def describe(self) -> str:
        """One-line schema rendering for listings and error messages."""
        bits = [self.kind]
        if self.choices is not None:
            bits.append("{" + "|".join(str(c) for c in self.choices) + "}")
        if self.required:
            bits.append("required")
        else:
            bits.append(f"default={self.default!r}")
        return f"{self.name}: " + " ".join(bits)

    def sample_value(self) -> Any:
        """A valid concrete value (for docs and round-trip tests)."""
        if self.sample is not None:
            return self.sample
        if not self.required:
            return self.default
        if self.choices:
            return self.choices[0]
        return {"int": 1, "float": 1.0, "str": "x", "bool": True}[self.kind]


@dataclass(frozen=True)
class Component:
    """One registered component: identity, schema, factory, docs."""

    category: str
    name: str
    factory: Callable
    params: Tuple[Param, ...] = ()
    doc: str = ""

    def param(self, name: str) -> Optional[Param]:
        for p in self.params:
            if p.name == name:
                return p
        return None

    def schema_line(self) -> str:
        """``name — doc (params: ...)`` rendering for ``repro scenarios``."""
        schema = ", ".join(p.describe() for p in self.params) or "no parameters"
        return f"{self.name:<14} {self.doc}  [{schema}]"

    def validate(self, params: Optional[Mapping[str, Any]]) -> Dict[str, Any]:
        """Full validated parameter dict (defaults applied, sorted keys)."""
        params = dict(params or {})
        out: Dict[str, Any] = {}
        declared = {p.name for p in self.params}
        unknown = sorted(set(params) - declared)
        if unknown:
            schema = ", ".join(p.describe() for p in self.params) or "none"
            raise ValueError(
                f"{self.category} {self.name!r} got unknown parameter(s) "
                f"{', '.join(map(repr, unknown))}; declared: {schema}"
            )
        for p in self.params:
            if p.name in params and params[p.name] is not None:
                out[p.name] = p.validate(params[p.name])
            elif p.name in params and not p.required:
                out[p.name] = None  # explicit None keeps an optional unset
            elif p.required:
                raise ValueError(
                    f"{self.category} {self.name!r} requires parameter "
                    f"{p.name!r} ({p.describe()})"
                )
            else:
                out[p.name] = p.default
        return {k: out[k] for k in sorted(out)}

    def canonical_params(self, params: Optional[Mapping[str, Any]]) -> Tuple[Tuple[str, Any], ...]:
        """Validated params minus entries equal to their default.

        Dropping defaulted entries keeps scenario digests stable when a
        component later grows a new optional parameter.
        """
        validated = self.validate(params)
        defaults = {p.name: p.default for p in self.params if not p.required}
        return tuple(
            (k, v)
            for k, v in validated.items()
            if not (k in defaults and defaults[k] == v and type(defaults[k]) is type(v))
        )


class Registry:
    """Name → component mapping across the scenario categories."""

    def __init__(self, categories: Sequence[str] = CATEGORIES) -> None:
        self._categories: Tuple[str, ...] = tuple(categories)
        self._components: Dict[str, Dict[str, Component]] = {
            c: {} for c in self._categories
        }

    # -- registration ------------------------------------------------------
    def add(
        self,
        category: str,
        name: str,
        factory: Callable,
        params: Sequence[Param] = (),
        doc: str = "",
        replace: bool = False,
    ) -> Component:
        """Register ``factory`` under ``(category, name)``.

        Duplicate names are refused unless ``replace=True`` — silently
        shadowing a built-in would change what stored scenario specs
        mean.
        """
        table = self._table(category)
        if name in table and not replace:
            raise ValueError(
                f"{category} {name!r} is already registered; "
                "pass replace=True to override"
            )
        comp = Component(category, name, factory, tuple(params), doc)
        table[name] = comp
        return comp

    def register(
        self,
        category: str,
        name: str,
        params: Sequence[Param] = (),
        doc: str = "",
        replace: bool = False,
    ) -> Callable:
        """Decorator form of :meth:`add`."""

        def wrap(factory: Callable) -> Callable:
            self.add(category, name, factory, params=params, doc=doc, replace=replace)
            return factory

        return wrap

    # -- lookup ------------------------------------------------------------
    def _table(self, category: str) -> Dict[str, Component]:
        if category not in self._components:
            raise ValueError(
                f"unknown category {category!r} "
                f"(choose from {', '.join(self._categories)})"
            )
        return self._components[category]

    def categories(self) -> Tuple[str, ...]:
        return self._categories

    def names(self, category: str) -> List[str]:
        """Registered component names of one category, sorted."""
        return sorted(self._table(category))

    def get(self, category: str, name: str) -> Component:
        table = self._table(category)
        if name not in table:
            raise ValueError(
                f"unknown {category} {name!r} "
                f"(registered: {', '.join(sorted(table)) or 'none'})"
            )
        return table[name]

    def has(self, category: str, name: str) -> bool:
        return name in self._table(category)

    # -- validation / construction -----------------------------------------
    def validate(
        self, category: str, name: str, params: Optional[Mapping[str, Any]] = None
    ) -> Dict[str, Any]:
        """Validated full parameter dict for ``(category, name)``."""
        return self.get(category, name).validate(params)

    def build(
        self,
        category: str,
        name: str,
        params: Optional[Mapping[str, Any]] = None,
        **context: Any,
    ) -> Any:
        """Instantiate a component: validate params, call the factory.

        ``context`` carries per-call inputs that are not part of the
        scenario identity (``n``, ``rng`` …); the factory signature
        decides which it needs.
        """
        comp = self.get(category, name)
        return comp.factory(**context, **comp.validate(params))

    def describe(self) -> Dict[str, List[Dict[str, Any]]]:
        """JSON-friendly dump of the whole registry (for the CLI)."""
        out: Dict[str, List[Dict[str, Any]]] = {}
        for category in self._categories:
            out[category] = [
                {
                    "name": comp.name,
                    "doc": comp.doc,
                    "params": [
                        {
                            "name": p.name,
                            "kind": p.kind,
                            "required": p.required,
                            "default": None if p.required else p.default,
                            "choices": list(p.choices) if p.choices else None,
                            "doc": p.doc,
                        }
                        for p in comp.params
                    ],
                }
                for _, comp in sorted(self._table(category).items())
            ]
        return out


#: the process-wide registry every built-in component registers into.
REGISTRY = Registry()
