"""Registry-driven scenario API.

Every axis of the empirical study — game, move policy, dynamics kind,
initial topology, per-trial metric — is a named, schema-typed component
in :data:`REGISTRY`; a :class:`ScenarioSpec` is the frozen, versioned,
JSON round-trippable description of one combination.  See
``docs/architecture.md`` ("The registry / ScenarioSpec layer") for the
design and a worked add-your-own-component example.
"""

from .base import CATEGORIES, REGISTRY, Component, Param, Registry
from .builtin import (  # noqa: F401  (importing registers the built-ins)
    DynamicsKind,
    TrialContext,
    TrialOutcome,
    resolve_alpha_spec,
    resolve_m_spec,
)
from .scenario import (
    SCENARIO_VERSION,
    ScenarioSpec,
    as_scenario,
    policy_series_label,
)

__all__ = [
    "REGISTRY",
    "Registry",
    "Component",
    "Param",
    "CATEGORIES",
    "DynamicsKind",
    "TrialOutcome",
    "TrialContext",
    "resolve_alpha_spec",
    "resolve_m_spec",
    "SCENARIO_VERSION",
    "ScenarioSpec",
    "as_scenario",
    "policy_series_label",
]
