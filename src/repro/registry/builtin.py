"""Built-in components: the paper's games, policies, dynamics kinds,
initial topologies and per-trial metrics, registered into
:data:`repro.registry.REGISTRY`.

Factory contracts per category (the context keywords
:meth:`Registry.build` passes through):

* ``game``     — ``factory(n, **params) -> Game`` (``n`` resolves
  "n/4"-style edge-price specs);
* ``policy``   — ``factory(**params) -> MovePolicy``;
* ``dynamics`` — ``factory(**params) -> DynamicsKind`` (see below);
* ``topology`` — ``factory(n, rng, **params) -> Network``;
* ``metric``   — ``factory(**params) -> Callable[[TrialContext], value]``
  where the returned value must be JSON-serializable (campaign rows
  carry it verbatim).

:class:`DynamicsKind` is the activation-model abstraction: sequential
(one policy-selected agent per step, the paper's Section 1.1 process)
and simultaneous (every unhappy agent per round, PR 3's
:class:`~repro.core.dynamics.SimultaneousDynamics`).  Both normalise
their outcome into a :class:`TrialOutcome` so metrics are
activation-model agnostic.
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Optional

import numpy as np

from ..analysis.social import (
    DegenerateInstanceError,
    edge_cost_share,
    reference_social_optimum,
    star_social_cost,
)
from ..core.dynamics import run_dynamics, run_simultaneous_dynamics
from ..core.games import (
    AsymmetricSwapGame,
    BilateralGame,
    BuyGame,
    CooperativeBuyGame,
    Game,
    GreedyBuyGame,
    SwapGame,
)
from ..core.network import Network
from ..core.policies import (
    FirstUnhappyPolicy,
    GreedyImprovementPolicy,
    MaxCostPolicy,
    MovePolicy,
    NoisyBestResponsePolicy,
    RandomPolicy,
    RoundRobinPolicy,
)
from ..graphs import adjacency as adj
from ..graphs.generators import (
    directed_line_network,
    path_network,
    random_budget_network,
    random_line_network,
    random_m_edge_network,
    random_tree_network,
    star_network,
)
from .base import REGISTRY, Param

__all__ = [
    "DynamicsKind",
    "TrialOutcome",
    "TrialContext",
    "ExploreWorkload",
    "TreeScanWorkload",
    "resolve_alpha_spec",
    "resolve_m_spec",
]


# ---------------------------------------------------------------------------
# Size-relative parameter specs
# ---------------------------------------------------------------------------

_FRACTION_RE = re.compile(r"^n/(\d+(?:\.\d+)?)$")
_MULTIPLE_RE = re.compile(r"^(\d+)n$")


def resolve_alpha_spec(spec: str, n: int) -> float:
    """Edge price for ``n`` agents.

    Accepts ``"n"``, ``"n/<d>"`` (any positive divisor, covering the
    paper's n/2, n/4, n/10), ``"<k>n"`` multiples, and plain numeric
    strings — a strict superset of the legacy
    ``ExperimentConfig.resolve_alpha`` table.
    """
    s = str(spec).strip()
    if s == "n":
        return float(n)
    frac = _FRACTION_RE.match(s)
    if frac:
        return n / float(frac.group(1))
    mult = _MULTIPLE_RE.match(s)
    if mult:
        return float(mult.group(1)) * n
    try:
        return float(s)
    except ValueError:
        raise ValueError(
            f"cannot resolve alpha spec {spec!r} "
            "(use 'n', 'n/<d>', '<k>n', or a number)"
        ) from None


def resolve_m_spec(spec: str, n: int) -> int:
    """Edge count for ``n`` agents: ``"n"``, ``"<k>n"``, or a plain
    integer string."""
    s = str(spec).strip()
    if s == "n":
        return n
    mult = _MULTIPLE_RE.match(s)
    if mult:
        return int(mult.group(1)) * n
    try:
        return int(s)
    except ValueError:
        raise ValueError(
            f"cannot resolve m_edges spec {spec!r} "
            "(use 'n', '<k>n', or an integer)"
        ) from None


# ---------------------------------------------------------------------------
# Games
# ---------------------------------------------------------------------------

_MODE_REQ = Param("mode", "str", choices=("sum", "max"),
                  doc="distance-cost aggregation", sample="sum")
_ALPHA = Param("alpha", "str", doc="edge price: 'n', 'n/<d>', '<k>n' or a number",
               sample="n/4")


@REGISTRY.register("game", "sg", params=(_MODE_REQ,),
                   doc="Swap Game: undirected single-edge swaps")
def _sg(n: int, mode: str) -> Game:
    return SwapGame(mode)


@REGISTRY.register("game", "asg", params=(_MODE_REQ,),
                   doc="Asymmetric Swap Game: owners swap their own edges")
def _asg(n: int, mode: str) -> Game:
    return AsymmetricSwapGame(mode)


@REGISTRY.register("game", "gbg", params=(_MODE_REQ, _ALPHA),
                   doc="Greedy Buy Game: buy/delete/swap single edges at price alpha")
def _gbg(n: int, mode: str, alpha: str) -> Game:
    return GreedyBuyGame(mode, alpha=resolve_alpha_spec(alpha, n))


@REGISTRY.register(
    "game", "bg",
    params=(_MODE_REQ, _ALPHA,
            Param("max_enumeration_agents", "int", default=16,
                  doc="strategy-enumeration size cap (best response is NP-hard)")),
    doc="Buy Game (Fabrikant et al.): arbitrary strategy changes, enumerated",
)
def _bg(n: int, mode: str, alpha: str, max_enumeration_agents: int) -> Game:
    return BuyGame(mode, alpha=resolve_alpha_spec(alpha, n),
                   max_enumeration_agents=max_enumeration_agents)


@REGISTRY.register(
    "game", "bilateral",
    params=(_MODE_REQ, _ALPHA,
            Param("max_enumeration_agents", "int", default=14,
                  doc="strategy-enumeration size cap")),
    doc="Bilateral equal-split Buy Game (Corbo & Parkes): consent-gated moves",
)
def _bilateral(n: int, mode: str, alpha: str, max_enumeration_agents: int) -> Game:
    return BilateralGame(mode, alpha=resolve_alpha_spec(alpha, n),
                         max_enumeration_agents=max_enumeration_agents)


@REGISTRY.register(
    "game", "coop",
    params=(_MODE_REQ, _ALPHA,
            Param("owner_share", "float", default=0.5,
                  doc="fraction of alpha the edge's builder pays; the "
                      "accepting endpoint pays the rest (Demaine et al. "
                      "cooperative cost sharing)")),
    doc="Cooperative Buy Game: GBG moves under shared edge-cost "
        "(owner_share * alpha builder / rest to the other endpoint)",
)
def _coop(n: int, mode: str, alpha: str, owner_share: float) -> Game:
    return CooperativeBuyGame(mode, alpha=resolve_alpha_spec(alpha, n),
                              owner_share=owner_share)


# ---------------------------------------------------------------------------
# Policies
# ---------------------------------------------------------------------------


@REGISTRY.register(
    "policy", "maxcost",
    params=(Param("tie_break", "str", default="random", choices=("random", "index"),
                  doc="order among equal-cost unhappy agents"),),
    doc="the paper's max cost policy: highest-cost unhappy agent moves",
)
def _maxcost(tie_break: str) -> MovePolicy:
    return MaxCostPolicy(tie_break=tie_break)


@REGISTRY.register("policy", "random",
                   doc="the paper's random policy: uniform unhappy agent")
def _random_policy() -> MovePolicy:
    return RandomPolicy()


@REGISTRY.register("policy", "first_unhappy",
                   doc="smallest-index unhappy agent (deterministic)")
def _first_unhappy() -> MovePolicy:
    return FirstUnhappyPolicy()


@REGISTRY.register("policy", "round_robin",
                   doc="cyclic scan starting after the last mover")
def _round_robin() -> MovePolicy:
    return RoundRobinPolicy()


@REGISTRY.register(
    "policy", "greedy",
    params=(Param("order", "str", default="index", choices=("index", "random"),
                  doc="which unhappy agent moves"),
            Param("move_choice", "str", default="first", choices=("first", "random"),
                  doc="which of its improving moves it plays")),
    doc="greedy improvement: any improving move, not necessarily a best response",
)
def _greedy(order: str, move_choice: str) -> MovePolicy:
    return GreedyImprovementPolicy(order=order, move_choice=move_choice)


def _check_epsilon(value: float) -> None:
    if not 0.0 <= value <= 1.0:
        raise ValueError(f"must be in [0, 1], got {value!r}")


def _check_noisy_base(value: str) -> None:
    # resolved lazily so policies registered after this module also
    # qualify; self-nesting is refused (it could never build anyway:
    # the wrapped base is constructed with default params only, and
    # epsilon has no default)
    if value == "noisy":
        raise ValueError("the noisy policy cannot wrap itself")
    REGISTRY.get("policy", value)


@REGISTRY.register(
    "policy", "noisy",
    params=(Param("epsilon", "float", doc="exploration probability in [0, 1]",
                  sample=0.1, check=_check_epsilon),
            Param("base", "str", default="maxcost", check=_check_noisy_base,
                  doc="registered policy explored around (built with defaults)")),
    doc="epsilon-greedy wrapper: random unhappy agent plays a random improving move",
)
def _noisy(epsilon: float, base: str) -> MovePolicy:
    return NoisyBestResponsePolicy(REGISTRY.build("policy", base), epsilon=epsilon)


# ---------------------------------------------------------------------------
# Dynamics kinds
# ---------------------------------------------------------------------------


@dataclass
class TrialOutcome:
    """Activation-model-agnostic outcome of one dynamics run.

    ``steps`` counts applied moves under both kinds (the paper's unit of
    convergence time); ``rounds`` is ``None`` for sequential runs.
    ``result`` keeps the kind-specific raw object (``RunResult`` or
    ``SimultaneousResult``) for metrics that want more detail.
    """

    status: str
    steps: int
    final: Network
    rounds: Optional[int] = None
    result: Any = None


class DynamicsKind:
    """How activation works: turns a (game, initial, policy) into a run."""

    #: whether the move policy participates (simultaneous rounds
    #: activate *every* unhappy agent, so the policy axis is inert there).
    uses_policy: bool = True

    def run(self, game: Game, net: Network, policy: MovePolicy, max_steps: int,
            rng: np.random.Generator, backend) -> TrialOutcome:
        raise NotImplementedError


class _SequentialKind(DynamicsKind):
    uses_policy = True

    def __init__(self, move_tie_break: str, detect_cycles: bool):
        self.move_tie_break = move_tie_break
        self.detect_cycles = detect_cycles

    def run(self, game, net, policy, max_steps, rng, backend) -> TrialOutcome:
        result = run_dynamics(
            game, net, policy, max_steps=max_steps, rng=rng,
            move_tie_break=self.move_tie_break, detect_cycles=self.detect_cycles,
            record_trajectory=False, copy_initial=False, backend=backend,
        )
        return TrialOutcome(result.status, result.steps, result.final, result=result)


class _SimultaneousKind(DynamicsKind):
    uses_policy = False

    def __init__(self, collision: str, move_tie_break: str, detect_cycles: bool):
        self.collision = collision
        self.move_tie_break = move_tie_break
        self.detect_cycles = detect_cycles

    def run(self, game, net, policy, max_steps, rng, backend) -> TrialOutcome:
        # the step budget bounds *rounds* here; each round applies at
        # least one move, so max_steps rounds can never under-run the
        # sequential budget of the same cell.
        result = run_simultaneous_dynamics(
            game, net, max_rounds=max_steps, rng=rng, collision=self.collision,
            move_tie_break=self.move_tie_break, detect_cycles=self.detect_cycles,
            copy_initial=False, backend=backend,
        )
        return TrialOutcome(result.status, result.steps, result.final,
                            rounds=result.rounds, result=result)


_TIE = Param("move_tie_break", "str", default="random", choices=("random", "first"),
             doc="tie rule among equally good moves")


@REGISTRY.register(
    "dynamics", "sequential",
    params=(_TIE, Param("detect_cycles", "bool", default=False,
                        doc="stop with status 'cycled' on a state revisit")),
    doc="one policy-selected agent plays a best response per step (Section 1.1)",
)
def _sequential(move_tie_break: str, detect_cycles: bool) -> DynamicsKind:
    return _SequentialKind(move_tie_break, detect_cycles)


@REGISTRY.register(
    "dynamics", "simultaneous",
    params=(Param("collision", "str", default="forfeit", choices=("forfeit", "force"),
                  doc="mid-round collision rule"),
            _TIE,
            Param("detect_cycles", "bool", default=True,
                  doc="hash round-boundary states")),
    doc="every unhappy agent moves each round (the policy axis is inert)",
)
def _simultaneous(collision: str, move_tie_break: str, detect_cycles: bool) -> DynamicsKind:
    return _SimultaneousKind(collision, move_tie_break, detect_cycles)


# ---------------------------------------------------------------------------
# Initial topologies
# ---------------------------------------------------------------------------


@REGISTRY.register(
    "topology", "budget",
    params=(Param("budget", "int", doc="owned edges per agent", sample=2),),
    doc="random connected network, every agent owns exactly `budget` edges",
)
def _budget_topo(n: int, rng: np.random.Generator, budget: int) -> Network:
    return random_budget_network(n, budget, seed=rng)


@REGISTRY.register(
    "topology", "random",
    params=(Param("m_edges", "str", default=None,
                  doc="edge count: 'n', '<k>n' or an integer (default n)",
                  sample="2n"),),
    doc="random connected network with m edges (spanning tree + extras)",
)
def _random_topo(n: int, rng: np.random.Generator, m_edges: Optional[str]) -> Network:
    m = resolve_m_spec(m_edges, n) if m_edges else n
    return random_m_edge_network(n, m, seed=rng)


@REGISTRY.register("topology", "rl",
                   doc="random line: a path with uniform per-edge ownership")
def _rl_topo(n: int, rng: np.random.Generator) -> Network:
    return random_line_network(n, seed=rng)


@REGISTRY.register("topology", "dl",
                   doc="directed line: a path whose ownership forms a directed path")
def _dl_topo(n: int, rng: np.random.Generator) -> Network:
    return directed_line_network(n)


@REGISTRY.register(
    "topology", "tree",
    params=(Param("method", "str", default="attach", choices=("attach", "prufer"),
                  doc="tree sampler"),),
    doc="random tree with uniform per-edge ownership",
)
def _tree_topo(n: int, rng: np.random.Generator, method: str) -> Network:
    return random_tree_network(n, seed=rng, method=method)


@REGISTRY.register(
    "topology", "star",
    params=(Param("center_owns", "bool", default=True,
                  doc="whether the centre owns all edges"),),
    doc="star with centre 0 (the SUM-optimal tree)",
)
def _star_topo(n: int, rng: np.random.Generator, center_owns: bool) -> Network:
    return star_network(n, center_owns=center_owns)


@REGISTRY.register(
    "topology", "path",
    params=(Param("ownership", "str", default="forward",
                  choices=("forward", "backward", "alternate"),
                  doc="edge-ownership pattern along the path"),),
    doc="the deterministic path v0 - v1 - ... - v(n-1)",
)
def _path_topo(n: int, rng: np.random.Generator, ownership: str) -> Network:
    return path_network(n, ownership=ownership)


# ---------------------------------------------------------------------------
# Metrics
# ---------------------------------------------------------------------------


@dataclass
class TrialContext:
    """Everything a per-trial metric may inspect."""

    spec: Any  # ScenarioSpec (typed loosely to avoid a circular import)
    n: int
    game: Game
    #: None when the dynamics kind does not consult a policy
    #: (``DynamicsKind.uses_policy`` is False, e.g. simultaneous rounds)
    policy: Optional[MovePolicy]
    outcome: TrialOutcome
    #: distance matrix of the final network, computed once and shared by
    #: every distance-based metric of the trial.
    _D: Optional[np.ndarray] = field(default=None, repr=False)

    @property
    def final(self) -> Network:
        return self.outcome.final

    @property
    def distances(self) -> np.ndarray:
        if self._D is None:
            self._D = adj.all_pairs_distances_fast(self.final.A)
        return self._D


def _metric(name: str, doc: str) -> Callable:
    """Shorthand: register a parameterless metric from its ctx function."""

    def wrap(fn: Callable[[TrialContext], Any]) -> Callable:
        REGISTRY.add("metric", name, lambda: fn, doc=doc)
        return fn

    return wrap


@_metric("steps", "applied moves until the run ended")
def _m_steps(ctx: TrialContext) -> int:
    return int(ctx.outcome.steps)


@_metric("status", "'converged' | 'cycled' | 'exhausted'")
def _m_status(ctx: TrialContext) -> str:
    return ctx.outcome.status


@_metric("converged", "whether the run reached a stable network")
def _m_converged(ctx: TrialContext) -> bool:
    return ctx.outcome.status == "converged"


@_metric("rounds", "activation rounds (null for sequential dynamics)")
def _m_rounds(ctx: TrialContext) -> Optional[int]:
    return None if ctx.outcome.rounds is None else int(ctx.outcome.rounds)


@_metric("social_cost", "sum of all agents' costs in the final network")
def _m_social_cost(ctx: TrialContext) -> float:
    return float(ctx.game.social_cost(ctx.final))


@_metric("max_agent_cost", "worst single agent's cost in the final network")
def _m_max_agent_cost(ctx: TrialContext) -> float:
    return float(np.max(ctx.game.cost_vector(ctx.final)))


@_metric("diameter", "diameter of the final network (inf -> null)")
def _m_diameter(ctx: TrialContext) -> Optional[float]:
    d = float(np.max(ctx.distances))
    return None if not np.isfinite(d) else d


@_metric("edges", "edge count of the final network")
def _m_edges_metric(ctx: TrialContext) -> int:
    return int(ctx.final.m)


# ---------------------------------------------------------------------------
# Workloads
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class ExploreWorkload:
    """Configured response-graph exploration (see
    :func:`repro.statespace.explore.explore`).

    The workload binds the transition rules (moveset, agent filter,
    state budget); the call supplies the game and the seed (a start
    network or an exhaustive size ``n``) plus execution details (store,
    shard, backend, jobs) that never change the resulting graph.
    """

    moves: str
    agent_filter: str
    max_states: int

    def __call__(self, game: Game, **kwargs):
        from ..statespace.explore import explore  # deferred: statespace imports core

        return explore(
            game, moves=self.moves, agent_filter=self.agent_filter,
            max_states=self.max_states, **kwargs,
        )


@REGISTRY.register(
    "workload", "explore",
    params=(
        Param("moves", "str", default="best",
              choices=("best", "improving", "greedy"),
              doc="best-response graph, every strictly improving move, or "
                  "improving single-edge deviations (greedy equilibria)"),
        Param("agent_filter", "str", default="all",
              choices=("all", "maxcost", "first_unhappy"),
              doc="which unhappy agents may move (the policy-moveset axis)"),
        Param("max_states", "int", default=200_000,
              doc="state-discovery budget; beyond it the census is truncated"),
    ),
    doc="exhaustive response-graph explorer: equilibrium/cycle census via "
        "sharded resumable frontier BFS + SCC analysis",
)
def _explore_workload(moves: str, agent_filter: str, max_states: int) -> ExploreWorkload:
    return ExploreWorkload(moves, agent_filter, max_states)


@dataclass(frozen=True)
class DrainWorkload:
    """Configured campaign-fabric drain (see
    :mod:`repro.experiments.fabric`).

    The workload binds the coordinator knobs — fleet size, lease TTL,
    work-unit granularity, retry budget; the call supplies the work
    source (built via :meth:`campaign_source` or any
    :class:`~repro.experiments.fabric.FabricSource`) and the store
    root.  None of the knobs change the drained result: aggregates are
    byte-identical however the units were scheduled.
    """

    workers: int
    lease_ttl: float
    unit_trials: int
    max_retries: int
    unit_timeout: Optional[float] = None

    def campaign_source(self, spec, **kwargs):
        """A :class:`CampaignSource` for ``spec`` with this workload's
        unit granularity (kwargs: seed, trials, n_values, ...)."""
        from ..experiments.fabric import CampaignSource  # deferred: fabric imports experiments

        kwargs.setdefault("unit_trials", self.unit_trials)
        return CampaignSource(spec, **kwargs)

    def __call__(self, source, root, **kwargs):
        from ..experiments.fabric import Coordinator

        return Coordinator(
            source, root, workers=self.workers, lease_ttl=self.lease_ttl,
            max_retries=self.max_retries, unit_timeout=self.unit_timeout,
            **kwargs,
        ).drain()


@REGISTRY.register(
    "workload", "drain",
    params=(
        Param("workers", "int", default=2,
              doc="worker processes draining the queue"),
        Param("lease_ttl", "float", default=30.0,
              doc="seconds without a heartbeat before a lease is reaped "
                  "and its unit reassigned"),
        Param("unit_trials", "int", default=8,
              doc="trial indices per campaign work unit"),
        Param("max_retries", "int", default=3,
              doc="re-assignments a unit survives before it is parked "
                  "as failed"),
        Param("unit_timeout", "float", default=0.0,
              doc="wall-clock watchdog: a unit whose self-reported "
                  "runtime exceeds this many seconds is released and "
                  "retried even while its worker heartbeats (0 = off)"),
    ),
    doc="lease-based work-queue coordinator: drains a campaign or "
        "exploration with a crash-tolerant worker fleet",
)
def _drain_workload(
    workers: int, lease_ttl: float, unit_trials: int, max_retries: int,
    unit_timeout: float,
) -> DrainWorkload:
    return DrainWorkload(workers, lease_ttl, unit_trials, max_retries,
                         unit_timeout if unit_timeout > 0 else None)


@dataclass(frozen=True)
class TreeScanWorkload:
    """Configured tree-conjecture alpha scan (see
    :mod:`repro.experiments.frontier`).

    The workload binds the scenario knobs — which buy-game variant,
    distance mode, starting density; the call supplies execution
    details (store root, seed, trial/n overrides).  It runs the
    campaign (resumable: re-calling with the same root only fills
    missing trials) and returns the per-(alpha, n) verdict rows from
    :func:`~repro.experiments.frontier.tree_conjecture_scan`.
    """

    game: str
    mode: str
    m_edges: str
    trials: int

    def spec(self):
        """The underlying campaign :class:`FigureSpec`."""
        from ..experiments.frontier import tree_conjecture_spec  # deferred: experiments imports registry

        return tree_conjecture_spec(
            game=self.game, mode=self.mode, m_edges=self.m_edges,
            trials=self.trials,
        )

    def __call__(self, root, seed: int = 0, n_values=None, **kwargs):
        from ..experiments.campaign import run_campaign
        from ..experiments.frontier import tree_conjecture_scan

        spec = self.spec()
        run_campaign(spec, root, seed=seed, n_values=n_values, **kwargs)
        return tree_conjecture_scan(spec, root, n_values=n_values)


@REGISTRY.register(
    "workload", "tree_scan",
    params=(
        Param("game", "str", default="gbg", choices=("gbg", "bg", "coop"),
              doc="which buy-game variant's equilibria to scan"),
        Param("mode", "str", default="sum", choices=("sum", "max"),
              doc="distance aggregation of the agent cost"),
        Param("m_edges", "str", default="2n",
              doc="starting density of the random initial networks"),
        Param("trials", "int", default=12,
              doc="dynamics runs per (alpha, n) cell"),
    ),
    doc="Bilò–Lenzner tree-conjecture scan: campaign over an alpha "
        "ladder flagging non-tree equilibria per (alpha, n) cell",
)
def _tree_scan_workload(game: str, mode: str, m_edges: str,
                        trials: int) -> TreeScanWorkload:
    return TreeScanWorkload(game, mode, m_edges, trials)


@dataclass(frozen=True)
class ServeWorkload:
    """Configured simulation service (see :mod:`repro.service`).

    The workload binds the capacity knobs — worker pool size and the
    admission quotas; the call supplies deployment details (state dir,
    host, port) and blocks until SIGTERM/SIGINT drains the server.
    None of the knobs change what a job computes: results are the same
    records ``repro campaign`` / ``repro explore`` would store.
    """

    workers: int
    max_jobs: int
    max_jobs_per_client: int
    max_n: int
    max_trials: int
    max_states: int

    def config(self, state_dir, host: str = "127.0.0.1", port: int = 8440,
               **kwargs):
        """A :class:`~repro.service.server.ServiceConfig` for this workload."""
        from ..service.quotas import QuotaPolicy
        from ..service.server import ServiceConfig

        quota = QuotaPolicy(
            max_queued=self.max_jobs,
            max_jobs_per_client=self.max_jobs_per_client,
            max_n=self.max_n, max_trials=self.max_trials,
            max_states=self.max_states,
        )
        return ServiceConfig(state_dir=state_dir, host=host, port=port,
                             workers=self.workers, quota=quota, **kwargs)

    def __call__(self, state_dir, host: str = "127.0.0.1", port: int = 8440,
                 **kwargs) -> int:
        from ..service.server import serve

        return serve(self.config(state_dir, host, port, **kwargs))


@REGISTRY.register(
    "workload", "serve",
    params=(
        Param("workers", "int", default=2,
              doc="job worker processes (0 = admission-only, never runs)"),
        Param("max_jobs", "int", default=64,
              doc="queued-job admission cap; beyond it submissions get "
                  "503 + Retry-After"),
        Param("max_jobs_per_client", "int", default=8,
              doc="active jobs one client token may hold (429 beyond)"),
        Param("max_n", "int", default=200,
              doc="largest n a submitted spec may request (422 beyond)"),
        Param("max_trials", "int", default=500,
              doc="most trials one job may request (422 beyond)"),
        Param("max_states", "int", default=200_000,
              doc="largest exploration budget one job may request"),
    ),
    doc="simulation-as-a-service: async HTTP/websocket job server with "
        "durable resumable jobs and live record streaming",
)
def _serve_workload(workers: int, max_jobs: int, max_jobs_per_client: int,
                    max_n: int, max_trials: int,
                    max_states: int) -> ServeWorkload:
    return ServeWorkload(workers, max_jobs, max_jobs_per_client,
                         max_n, max_trials, max_states)


@_metric("cost_ratio",
         "final social cost / the star's social cost (the paper's PoA proxy)")
def _m_cost_ratio(ctx: TrialContext) -> Optional[float]:
    # edge accounting comes from the game's own cost rule, never from
    # the old alpha>0 guess (which mispriced swap-with-alpha variants
    # and undefined-share custom rules)
    reference = star_social_cost(
        ctx.n, ctx.game.mode.value,
        alpha=ctx.game.alpha, edge_share=edge_cost_share(ctx.game),
    )
    if reference <= 0:
        return None
    return float(ctx.game.social_cost(ctx.final)) / reference


@_metric("poa_ratio",
         "final social cost / reference optimum (exact census optimum at "
         "small n, star bound beyond; null for degenerate instances)")
def _m_poa_ratio(ctx: TrialContext) -> Optional[float]:
    try:
        reference, _kind = reference_social_optimum(ctx.game, ctx.n)
    except DegenerateInstanceError:
        return None
    if reference <= 0:
        return None
    ratio = float(ctx.game.social_cost(ctx.final)) / reference
    return ratio if np.isfinite(ratio) else None


@_metric("is_tree_equilibrium",
         "converged to a stable tree? (null while not converged — the "
         "Bilò–Lenzner tree-conjecture flag)")
def _m_is_tree_equilibrium(ctx: TrialContext) -> Optional[bool]:
    if ctx.outcome.status != "converged":
        return None
    from ..graphs.properties import is_tree

    return bool(is_tree(ctx.final.A))


@_metric("greedy_stable",
         "is the final network a greedy equilibrium (no improving "
         "single-edge deviation)? null when undecidable at this size")
def _m_greedy_stable(ctx: TrialContext) -> Optional[bool]:
    try:
        return bool(ctx.game.is_greedy_stable(ctx.final))
    except ValueError:
        # bilateral-style games decide greedy stability by strategy
        # enumeration, which is capped; past the cap the answer is
        # unknown, not False
        return None
