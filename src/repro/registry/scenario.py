"""The declarative experiment spec: one frozen, serializable object per
scenario.

A :class:`ScenarioSpec` names one registered component per axis (game,
policy, dynamics kind, initial topology) plus validated parameters and
the per-trial metrics to report.  It is

* **frozen & hashable** — usable as a dict key and safe to ship to
  worker processes;
* **validated** — construction fails loudly on unknown components,
  unknown parameters, type mismatches and out-of-choice values;
* **JSON round-trippable** — :meth:`to_json` / :meth:`from_json` lose
  nothing (``spec == ScenarioSpec.from_json(spec.to_json())``);
* **versioned** — payloads carry ``scenario_version`` so future layout
  changes can migrate old files instead of misreading them;
* **seed-compatible with the legacy surface** — see below.

Seed-digest compatibility
-------------------------
Trial seeds derive from ``SeedSequence(campaign_seed, digest(spec), n)``
(see :func:`repro.experiments.runner.trial_jobs`), and the pre-registry
code computed ``digest`` as ``crc32(repr(ExperimentConfig(...)))``.
Every spec that is expressible in the legacy ``ExperimentConfig``
surface therefore *canonicalizes to exactly that legacy repr string*
(:meth:`canonical`), so its digest — and with it every stored seed,
golden fixture, campaign cell key and resumable store — is unchanged
byte for byte.  Scenarios outside the legacy surface canonicalize to a
versioned sorted-JSON form instead.

Two fields are deliberately **excluded** from the canonical form:
``backend`` (an execution detail that must never change which instances
are drawn — same rule as the legacy ``repr=False`` field) and
``metrics`` (observational outputs; adding a metric to a running
campaign must not invalidate its stored trials).
"""

from __future__ import annotations

import json
import zlib
from dataclasses import dataclass, field, replace
from typing import Any, Dict, Mapping, Optional, Tuple, Union

from .base import REGISTRY

__all__ = [
    "SCENARIO_VERSION",
    "ScenarioSpec",
    "as_scenario",
    "policy_series_label",
]

#: current spec-layout version, stamped into every JSON payload.
SCENARIO_VERSION = 1

Params = Tuple[Tuple[str, Any], ...]
ParamsInput = Union[None, Mapping[str, Any], Params]

#: default metric set — mirrors the legacy ``(steps, status)`` tuple.
DEFAULT_METRICS: Tuple[str, ...] = ("steps", "status")


def policy_series_label(policy: str) -> str:
    """Legend label of a policy in the paper's plotting style.

    The paper spells its two policies "max cost" and "random"; every
    other registered policy is labelled by its registry name.
    """
    return "max cost" if policy == "maxcost" else policy


def _as_param_tuple(value: ParamsInput) -> Params:
    """Normalise a params field input to a sorted tuple of pairs."""
    if value is None:
        return ()
    if isinstance(value, Mapping):
        items = value.items()
    else:
        items = [(k, v) for k, v in value]
    return tuple(sorted((str(k), v) for k, v in items))


@dataclass(frozen=True)
class ScenarioSpec:
    """One declarative experiment scenario.

    ``*_params`` fields hold canonical sorted ``(name, value)`` tuples;
    construction accepts plain dicts and normalises them.  Parameters
    equal to their declared defaults are dropped during normalisation,
    which keeps digests stable when components grow new optional
    parameters later.
    """

    game: str
    policy: str = "maxcost"
    topology: str = "budget"
    dynamics: str = "sequential"
    game_params: ParamsInput = ()
    policy_params: ParamsInput = ()
    topology_params: ParamsInput = ()
    dynamics_params: ParamsInput = ()
    metrics: Tuple[str, ...] = DEFAULT_METRICS
    label: str = ""
    #: distance engine ("auto" | "incremental" | "dense"); excluded from
    #: the canonical form — it must never change which instances are drawn.
    backend: str = field(default="auto", compare=False)
    version: int = SCENARIO_VERSION

    _AXES = (("game", "game_params"), ("policy", "policy_params"),
             ("dynamics", "dynamics_params"), ("topology", "topology_params"))

    def __post_init__(self) -> None:
        if self.version != SCENARIO_VERSION:
            raise ValueError(
                f"unsupported scenario version {self.version!r} "
                f"(this build reads version {SCENARIO_VERSION})"
            )
        if isinstance(self.metrics, str):
            raise ValueError("metrics must be a sequence of names, not a string")
        object.__setattr__(self, "metrics", tuple(self.metrics))
        for category, params_field in self._AXES:
            name = getattr(self, category)
            comp = REGISTRY.get(category, name)  # unknown name -> ValueError
            canonical = comp.canonical_params(dict(_as_param_tuple(getattr(self, params_field))))
            object.__setattr__(self, params_field, canonical)
        for m in self.metrics:
            REGISTRY.get("metric", m)

    # -- accessors ---------------------------------------------------------
    def params_for(self, category: str) -> Dict[str, Any]:
        """Explicitly-set parameters of one axis as a plain dict."""
        return dict(getattr(self, f"{category}_params"))

    def component(self, category: str):
        """The registered :class:`~repro.registry.base.Component` of an axis."""
        return REGISTRY.get(category, getattr(self, category))

    def with_(self, **changes: Any) -> "ScenarioSpec":
        """Functional update (re-validates through ``__post_init__``)."""
        return replace(self, **changes)

    # -- JSON --------------------------------------------------------------
    def to_json(self) -> Dict[str, Any]:
        """Lossless JSON payload (round-trips via :meth:`from_json`)."""
        return {
            "scenario_version": self.version,
            "game": {"name": self.game, "params": self.params_for("game")},
            "policy": {"name": self.policy, "params": self.params_for("policy")},
            "dynamics": {"name": self.dynamics, "params": self.params_for("dynamics")},
            "topology": {"name": self.topology, "params": self.params_for("topology")},
            "metrics": list(self.metrics),
            "label": self.label,
            "backend": self.backend,
        }

    @classmethod
    def from_json(cls, payload: Mapping[str, Any]) -> "ScenarioSpec":
        """Parse and validate a payload produced by :meth:`to_json`."""
        if not isinstance(payload, Mapping):
            raise ValueError(f"scenario payload must be an object, got {type(payload).__name__}")
        version = payload.get("scenario_version", SCENARIO_VERSION)
        known = {"scenario_version", "game", "policy", "dynamics", "topology",
                 "metrics", "label", "backend"}
        unknown = sorted(set(payload) - known)
        if unknown:
            raise ValueError(f"unknown scenario field(s): {', '.join(unknown)}")

        def axis(key: str, default: Optional[str] = None) -> Tuple[str, Dict[str, Any]]:
            value = payload.get(key, default)
            if value is None:
                raise ValueError(f"scenario payload is missing {key!r}")
            if isinstance(value, str):
                return value, {}
            if isinstance(value, Mapping):
                extra = sorted(set(value) - {"name", "params"})
                if extra or "name" not in value:
                    raise ValueError(
                        f"{key} must be a name or {{'name', 'params'}} object"
                    )
                return str(value["name"]), dict(value.get("params") or {})
            raise ValueError(f"{key} must be a string or object, got {value!r}")

        game, game_params = axis("game")
        policy, policy_params = axis("policy", "maxcost")
        dynamics, dynamics_params = axis("dynamics", "sequential")
        topology, topology_params = axis("topology", "budget")
        return cls(
            game=game, policy=policy, topology=topology, dynamics=dynamics,
            game_params=game_params, policy_params=policy_params,
            topology_params=topology_params, dynamics_params=dynamics_params,
            metrics=tuple(payload.get("metrics", DEFAULT_METRICS)),
            label=str(payload.get("label", "")),
            backend=str(payload.get("backend", "auto")),
            version=int(version),
        )

    def json_str(self, indent: Optional[int] = None) -> str:
        return json.dumps(self.to_json(), indent=indent, sort_keys=True)

    @classmethod
    def from_json_str(cls, text: str) -> "ScenarioSpec":
        return cls.from_json(json.loads(text))

    # -- legacy bridge -----------------------------------------------------
    def as_experiment_config(self):
        """The equivalent legacy ``ExperimentConfig``, or ``None``.

        A spec maps back iff every axis lies inside the legacy surface:
        default sequential dynamics; ``maxcost``/``random`` policy with
        default parameters; a ``budget``/``random``/``rl``/``dl``
        topology with legacy-shaped parameters; and game parameters
        limited to ``mode``/``alpha``.  Metrics and backend never block
        the mapping (both are outside the canonical form).
        """
        from ..experiments.config import ExperimentConfig  # local: avoids cycle

        if self.dynamics != "sequential" or self.dynamics_params:
            return None
        if self.policy not in ("maxcost", "random") or self.policy_params:
            return None
        if self.topology not in ("budget", "random", "rl", "dl"):
            return None
        topo = self.params_for("topology")
        if self.topology == "budget":
            if set(topo) != {"budget"}:
                return None
            budget, m_edges = int(topo["budget"]), None
        elif self.topology == "random":
            if not set(topo) <= {"m_edges"}:
                return None
            budget, m_edges = None, topo.get("m_edges")
        else:
            if topo:
                return None
            budget, m_edges = None, None
        gp = self.params_for("game")
        if not set(gp) <= {"mode", "alpha"} or "mode" not in gp:
            return None
        return ExperimentConfig(
            game=self.game, mode=gp["mode"], policy=self.policy,
            topology=self.topology, budget=budget, m_edges=m_edges,
            alpha=gp.get("alpha"), label=self.label, backend=self.backend,
        )

    # -- canonical identity -------------------------------------------------
    def canonical(self) -> str:
        """The seed-digest canonical string (see the module docstring).

        Legacy-expressible specs return the exact pre-registry
        ``repr(ExperimentConfig(...))`` string; everything else returns
        a ``ScenarioSpec/v1:`` sorted-JSON form that excludes
        ``metrics`` and ``backend``.
        """
        legacy = self.as_experiment_config()
        if legacy is not None:
            return repr(legacy)
        payload = {
            axis: {"name": getattr(self, axis), "params": self.params_for(axis)}
            for axis, _ in self._AXES
        }
        payload["label"] = self.label
        return f"ScenarioSpec/v{self.version}:" + json.dumps(
            payload, sort_keys=True, separators=(",", ":")
        )

    def digest(self) -> int:
        """Deterministic 32-bit digest of the canonical form.

        This value feeds ``SeedSequence`` (trial seeds) and the
        campaign store's cell keys; it is pinned by
        ``tests/registry/test_scenario.py::TestPinnedDigests``.
        """
        return zlib.crc32(self.canonical().encode())

    # -- presentation ------------------------------------------------------
    def series_name(self) -> str:
        """Legend label in the paper's plotting style."""
        if self.label:
            return self.label
        bits = []
        topo = self.params_for("topology")
        gp = self.params_for("game")
        if "budget" in topo:
            bits.append(f"k={topo['budget']}")
        if topo.get("m_edges") is not None:
            bits.append(f"m={topo['m_edges']}")
        if gp.get("alpha") is not None:
            bits.append(f"a={gp['alpha']}")
        if self.topology not in ("budget", "random"):
            bits.append(self.topology)
        if self.game not in ("asg", "gbg"):
            bits.append(self.game)
        if self.dynamics != "sequential":
            bits.append(self.dynamics)
        bits.append(policy_series_label(self.policy))
        return ", ".join(bits)


def as_scenario(cfg) -> ScenarioSpec:
    """Coerce a legacy ``ExperimentConfig`` (or a spec) to a
    :class:`ScenarioSpec` — the runner's single entry point."""
    if isinstance(cfg, ScenarioSpec):
        return cfg
    to_scenario = getattr(cfg, "to_scenario", None)
    if to_scenario is not None:
        return to_scenario()
    raise TypeError(
        f"expected a ScenarioSpec or ExperimentConfig, got {type(cfg).__name__}"
    )
