"""JSON Schema for :class:`~repro.registry.scenario.ScenarioSpec`.

Generated straight from the registry's :class:`~repro.registry.base
.Param` metadata, so the schema can never drift from what
``ScenarioSpec.from_json`` actually accepts: every registered
component's name becomes an enum entry, every declared parameter a
typed property (choices → ``enum``, optionals → nullable), every axis
the ``name-string | {name, params}`` shape ``from_json`` parses.

Ships with :func:`validate_payload`, a minimal stdlib validator for
exactly the subset of keywords the generator emits (``type``, ``enum``,
``const``, ``properties``, ``required``, ``additionalProperties``,
``items``, ``anyOf``) — service clients without a jsonschema package
can still pre-validate specs, and the round-trip test pins
generator and validator against the registry itself.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional

from .base import REGISTRY, Component, Param
from .scenario import DEFAULT_METRICS, SCENARIO_VERSION

__all__ = [
    "AXES",
    "axis_schema",
    "component_schema",
    "param_schema",
    "scenario_json_schema",
    "validate_payload",
]

#: the scenario axes that appear in a payload, in presentation order
AXES = ("game", "policy", "dynamics", "topology")

_KIND_TYPES = {
    "int": "integer",
    "float": "number",
    "str": "string",
    "bool": "boolean",
}


def param_schema(param: Param) -> Dict[str, Any]:
    """Schema of one declared parameter value."""
    schema: Dict[str, Any] = {}
    if param.choices is not None:
        values: List[Any] = list(param.choices)
        if not param.required:
            values.append(None)
        schema["enum"] = values
    else:
        kinds = [_KIND_TYPES[param.kind]]
        if param.kind == "float":
            kinds.append("integer")  # JSON has no float literal mandate
        if param.kind in ("int", "float", "str"):
            # the CLI round-trips every value through strings and Param
            # coerces them back, so strings are always on the wire menu
            if "string" not in kinds:
                kinds.append("string")
        if not param.required:
            kinds.append("null")
        schema["type"] = kinds if len(kinds) > 1 else kinds[0]
    if param.doc:
        schema["description"] = param.doc
    if not param.required:
        schema["default"] = param.default
    return schema


def component_schema(comp: Component) -> Dict[str, Any]:
    """Schema of one ``{"name": ..., "params": {...}}`` axis object."""
    properties: Dict[str, Any] = {
        p.name: param_schema(p) for p in comp.params
    }
    required = sorted(p.name for p in comp.params if p.required)
    params: Dict[str, Any] = {
        "type": "object",
        "properties": properties,
        "additionalProperties": False,
    }
    if required:
        params["required"] = required
    schema: Dict[str, Any] = {
        "type": "object",
        "properties": {"name": {"const": comp.name}, "params": params},
        "required": ["name"],
        "additionalProperties": False,
    }
    if comp.doc:
        schema["description"] = comp.doc
    return schema


def axis_schema(category: str) -> Dict[str, Any]:
    """One axis accepts a bare component name or a name+params object."""
    names = REGISTRY.names(category)
    return {
        "anyOf": [
            {"enum": names},
            *(component_schema(REGISTRY.get(category, name)) for name in names),
        ]
    }


def scenario_json_schema() -> Dict[str, Any]:
    """The full schema of a ``ScenarioSpec.to_json()`` payload."""
    metric_names = REGISTRY.names("metric")
    return {
        "$schema": "https://json-schema.org/draft/2020-12/schema",
        "title": "ScenarioSpec",
        "description": (
            "A registry-validated scenario: one component per axis plus "
            "parameters, as accepted by ScenarioSpec.from_json and by "
            "POST /jobs of repro.service."
        ),
        "type": "object",
        "properties": {
            "scenario_version": {"const": SCENARIO_VERSION},
            **{axis: axis_schema(axis) for axis in AXES},
            "metrics": {
                "type": "array",
                "items": {"enum": metric_names},
                "default": list(DEFAULT_METRICS),
            },
            "label": {"type": "string", "default": ""},
            "backend": {"type": "string", "default": "auto"},
        },
        "required": ["game"],
        "additionalProperties": False,
    }


# --------------------------------------------------------------------------
# Minimal validator for the emitted subset
# --------------------------------------------------------------------------

_TYPE_CHECKS = {
    "object": lambda v: isinstance(v, dict),
    "array": lambda v: isinstance(v, list),
    "string": lambda v: isinstance(v, str),
    "integer": lambda v: isinstance(v, int) and not isinstance(v, bool),
    "number": lambda v: isinstance(v, (int, float)) and not isinstance(v, bool),
    "boolean": lambda v: isinstance(v, bool),
    "null": lambda v: v is None,
}


def validate_payload(
    value: Any, schema: Optional[Dict[str, Any]] = None, path: str = "$"
) -> List[str]:
    """Validate ``value`` against ``schema`` (default: the scenario
    schema); returns a list of ``"path: problem"`` strings, empty when
    the payload conforms.  Supports exactly the keywords the generator
    emits — not a general JSON Schema engine.
    """
    if schema is None:
        schema = scenario_json_schema()
    errors: List[str] = []

    if "const" in schema and value != schema["const"]:
        errors.append(f"{path}: expected {schema['const']!r}, got {value!r}")
        return errors
    if "enum" in schema and value not in schema["enum"]:
        errors.append(
            f"{path}: {value!r} is not one of "
            f"{', '.join(map(repr, schema['enum']))}")
        return errors

    if "anyOf" in schema:
        branches = schema["anyOf"]
        if isinstance(value, dict) and "name" in value:
            # discriminator: a named axis object is judged against the
            # component it names, not against every sibling's errors
            keyed = [
                b for b in branches
                if b.get("properties", {}).get("name", {}).get("const")
                == value["name"]
            ]
            if keyed:
                branches = keyed
        candidates = [validate_payload(value, branch, path)
                      for branch in branches]
        if not any(not errs for errs in candidates):
            # report the branch that got furthest (fewest complaints)
            best = min(candidates, key=len)
            errors.append(f"{path}: no matching alternative")
            errors.extend(best)
        return errors

    declared = schema.get("type")
    if declared is not None:
        allowed = declared if isinstance(declared, list) else [declared]
        if not any(_TYPE_CHECKS[t](value) for t in allowed):
            errors.append(
                f"{path}: expected {' or '.join(allowed)}, "
                f"got {type(value).__name__}")
            return errors

    if isinstance(value, dict):
        properties = schema.get("properties", {})
        for name in schema.get("required", ()):
            if name not in value:
                errors.append(f"{path}: missing required property {name!r}")
        if schema.get("additionalProperties") is False:
            for name in sorted(set(value) - set(properties)):
                errors.append(f"{path}: unknown property {name!r}")
        for name, sub in properties.items():
            if name in value:
                errors.extend(validate_payload(value[name], sub,
                                               f"{path}.{name}"))
    elif isinstance(value, list) and "items" in schema:
        for idx, item in enumerate(value):
            errors.extend(validate_payload(item, schema["items"],
                                           f"{path}[{idx}]"))
    return errors
