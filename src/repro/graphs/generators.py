"""Initial-network generators — Sections 3.4.1 and 4.2.1 of the paper.

The empirical study draws its initial networks from three generators:

* **uniform budget-k networks** (`random_budget_network`): a random
  spanning tree grown by attaching uniformly chosen unmarked agents to
  uniformly chosen marked agents, with edge ownership uniform subject to
  "no agent owns more than k edges"; then extra edges are inserted until
  *every* agent owns exactly ``k`` edges (the bounded-budget / uniform
  unit-budget setting of Ehsani et al.).
* **random m-edge networks** (`random_m_edge_network`): the same random
  spanning tree (ownership uniform per edge), then uniformly random
  extra edges until ``m`` edges are present.
* **random line / directed line** (`random_line_network`,
  `directed_line_network`): a path ``v1 .. vn`` with per-edge uniform
  ownership (``rl``) or with all edges owned "in the same direction"
  (``dl``) — the topology-comparison settings of Figures 12 and 14.

Plus deterministic constructions used by the theory sections: paths,
stars, double stars, cycles and uniform random trees (Prüfer).
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple

import numpy as np

from ..core.network import Network

__all__ = [
    "random_budget_network",
    "random_m_edge_network",
    "random_tree_network",
    "random_line_network",
    "directed_line_network",
    "path_network",
    "cycle_network",
    "star_network",
    "double_star_network",
    "random_spanning_tree_edges",
]


def _rng(seed_or_rng) -> np.random.Generator:
    if isinstance(seed_or_rng, np.random.Generator):
        return seed_or_rng
    return np.random.default_rng(seed_or_rng)


def random_spanning_tree_edges(
    n: int,
    rng: np.random.Generator,
    max_owned: Optional[int] = None,
) -> List[Tuple[int, int]]:
    """The paper's random spanning tree as ``(owner, target)`` pairs.

    Process (§3.4.1): start with a uniformly chosen pair and a uniformly
    chosen owner; then repeatedly join a uniform unmarked agent to a
    uniform marked agent.  Ownership is uniform among the endpoints,
    subject to "no agent owns more than ``max_owned``" when given.
    """
    if n < 1:
        raise ValueError("n must be >= 1")
    if n == 1:
        return []
    owned_count = np.zeros(n, dtype=np.int64)
    perm = rng.permutation(n)
    first, second = int(perm[0]), int(perm[1])
    edges: List[Tuple[int, int]] = []

    def pick_owner(u: int, v: int) -> int:
        cand = [u, v]
        if max_owned is not None:
            cand = [x for x in cand if owned_count[x] < max_owned]
            if not cand:
                raise RuntimeError("both endpoints at ownership capacity")
        return int(cand[int(rng.integers(len(cand)))])

    o = pick_owner(first, second)
    t = second if o == first else first
    edges.append((o, t))
    owned_count[o] += 1
    marked = [first, second]
    unmarked = [int(v) for v in perm[2:]]
    while unmarked:
        i = int(rng.integers(len(unmarked)))
        u = unmarked.pop(i)
        v = marked[int(rng.integers(len(marked)))]
        o = pick_owner(u, v)
        t = v if o == u else u
        edges.append((o, t))
        owned_count[o] += 1
        marked.append(u)
    return edges


def random_budget_network(n: int, budget: int, seed=None, max_retries: int = 20) -> Network:
    """Uniform budget-``k`` initial network of §3.4.1.

    Every agent ends up owning exactly ``budget`` edges.  Requires
    ``n > 2 * budget`` so that a simple graph with this ownership profile
    exists (a circulant orientation witnesses feasibility).  The greedy
    random completion can wedge on dense profiles; in that case the
    whole construction is retried with fresh randomness.
    """
    if budget < 1:
        raise ValueError("budget must be >= 1")
    if n <= 2 * budget:
        raise ValueError(f"need n > 2*budget (= {2 * budget}) for a simple budget-{budget} network")
    rng = _rng(seed)
    for _attempt in range(max_retries):
        try:
            return _random_budget_network_once(n, budget, rng)
        except RuntimeError:  # greedy completion wedged; retry
            pass
    # Last resort for near-complete profiles (e.g. n = 2k+1, the oriented
    # complete graph): a circulant orientation under a random vertex
    # relabelling.  Agent p[i] owns edges to p[i+1..i+k mod n]; valid and
    # simple whenever n > 2k.
    perm = rng.permutation(n)
    owned = [
        (int(perm[i]), int(perm[(i + j) % n]))
        for i in range(n)
        for j in range(1, budget + 1)
    ]
    return Network.from_owned_edges(n, owned)


def _random_budget_network_once(n: int, budget: int, rng: np.random.Generator) -> Network:
    edges = random_spanning_tree_edges(n, rng, max_owned=budget)
    A = np.zeros((n, n), dtype=bool)
    O = np.zeros((n, n), dtype=bool)
    owned = np.zeros(n, dtype=np.int64)
    for o, t in edges:
        A[o, t] = A[t, o] = True
        O[o, t] = True
        owned[o] += 1
    # Insert edges until every agent owns exactly `budget` (§3.4.1:
    # "choose one unmarked agent and one other agent uniformly at random
    # and insert the edge with the first agent being its owner").  We
    # retry on collisions and fall back to a deterministic scan when the
    # random phase stalls.
    pending = [u for u in range(n) if owned[u] < budget]

    def grant(u: int, v: int) -> None:
        A[u, v] = A[v, u] = True
        O[u, v] = True
        owned[u] += 1
        if owned[u] == budget:
            pending.remove(u)

    stall = 0
    while pending:
        u = pending[int(rng.integers(len(pending)))]
        v = int(rng.integers(n))
        if v != u and not A[u, v]:
            grant(u, v)
            stall = 0
            continue
        stall += 1
        if stall > 50 * n:
            progressed = False
            for u in list(pending):
                for v in range(n):
                    if v != u and not A[u, v]:
                        grant(u, v)
                        progressed = True
                        break
                if progressed:
                    break
            if not progressed:
                raise RuntimeError(
                    f"cannot complete budget-{budget} network on n={n} vertices"
                )
            stall = 0
    return Network(A, O)


def random_m_edge_network(n: int, m: int, seed=None) -> Network:
    """Random connected network with exactly ``m`` edges (§4.2.1).

    A random spanning tree ensures connectedness, then uniformly random
    non-parallel edges are inserted until ``m`` edges exist; every edge's
    owner is uniform among its endpoints.
    """
    max_m = n * (n - 1) // 2
    if m < n - 1:
        raise ValueError(f"need m >= n-1 = {n - 1} for a connected network")
    if m > max_m:
        raise ValueError(f"m={m} exceeds maximum {max_m} for n={n}")
    rng = _rng(seed)
    edges = random_spanning_tree_edges(n, rng)
    A = np.zeros((n, n), dtype=bool)
    O = np.zeros((n, n), dtype=bool)
    for o, t in edges:
        A[o, t] = A[t, o] = True
        O[o, t] = True
    count = n - 1
    while count < m:
        u = int(rng.integers(n))
        v = int(rng.integers(n))
        if u == v or A[u, v]:
            continue
        A[u, v] = A[v, u] = True
        if rng.integers(2):
            O[u, v] = True
        else:
            O[v, u] = True
        count += 1
    return Network(A, O)


def random_tree_network(n: int, seed=None, method: str = "attach") -> Network:
    """Random tree with uniform per-edge ownership.

    ``method="attach"`` uses the paper's marked/unmarked attachment
    process; ``method="prufer"`` samples a uniformly random labelled tree
    from a random Prüfer sequence.
    """
    rng = _rng(seed)
    if method == "attach":
        edges = random_spanning_tree_edges(n, rng)
        return Network.from_owned_edges(n, edges)
    if method != "prufer":
        raise ValueError("method must be 'attach' or 'prufer'")
    if n == 1:
        return Network.from_owned_edges(1, [])
    if n == 2:
        return Network.from_owned_edges(2, [(0, 1)] if rng.integers(2) else [(1, 0)])
    seq = rng.integers(0, n, size=n - 2)
    degree = np.ones(n, dtype=np.int64)
    for x in seq:
        degree[x] += 1
    import heapq

    leaves = [v for v in range(n) if degree[v] == 1]
    heapq.heapify(leaves)
    pairs: List[Tuple[int, int]] = []
    for x in seq:
        leaf = heapq.heappop(leaves)
        pairs.append((leaf, int(x)))
        degree[x] -= 1
        if degree[x] == 1:
            heapq.heappush(leaves, int(x))
    u = heapq.heappop(leaves)
    v = heapq.heappop(leaves)
    pairs.append((u, v))
    owned = [(a, b) if rng.integers(2) else (b, a) for a, b in pairs]
    return Network.from_owned_edges(n, owned)


def path_network(n: int, ownership: str = "forward") -> Network:
    """The path ``v0 - v1 - ... - v(n-1)``.

    ``ownership``:
      * ``"forward"`` — ``vi`` owns the edge to ``v(i+1)`` (a directed
        line, the paper's ``dl`` setting);
      * ``"backward"`` — ``v(i+1)`` owns the edge to ``vi``;
      * ``"alternate"`` — owners alternate.
    """
    if ownership == "forward":
        edges = [(i, i + 1) for i in range(n - 1)]
    elif ownership == "backward":
        edges = [(i + 1, i) for i in range(n - 1)]
    elif ownership == "alternate":
        edges = [(i, i + 1) if i % 2 == 0 else (i + 1, i) for i in range(n - 1)]
    else:
        raise ValueError("ownership must be forward/backward/alternate")
    return Network.from_owned_edges(n, edges)


def random_line_network(n: int, seed=None) -> Network:
    """The ``rl`` setting: a path with uniform per-edge ownership."""
    rng = _rng(seed)
    edges = [
        (i, i + 1) if rng.integers(2) else (i + 1, i) for i in range(n - 1)
    ]
    return Network.from_owned_edges(n, edges)


def directed_line_network(n: int) -> Network:
    """The ``dl`` setting: a path whose ownership forms a directed path."""
    return path_network(n, ownership="forward")


def cycle_network(n: int) -> Network:
    """The cycle ``v0 - v1 - ... - v(n-1) - v0``; ``vi`` owns ``(vi, vi+1)``.

    Every agent owns exactly one edge (the smallest uniform unit-budget
    networks).
    """
    if n < 3:
        raise ValueError("a cycle needs n >= 3")
    edges = [(i, (i + 1) % n) for i in range(n)]
    return Network.from_owned_edges(n, edges)


def star_network(n: int, center_owns: bool = True) -> Network:
    """Star with centre 0."""
    if center_owns:
        edges = [(0, i) for i in range(1, n)]
    else:
        edges = [(i, 0) for i in range(1, n)]
    return Network.from_owned_edges(n, edges)


def double_star_network(n_left: int, n_right: int) -> Network:
    """Two adjacent centres (0 and 1) with ``n_left``/``n_right`` leaves.

    Alon et al. show stars and double stars are the only stable trees of
    the MAX-SG; the tree dynamics tests assert convergence into exactly
    these shapes.
    """
    n = 2 + n_left + n_right
    edges = [(0, 1)]
    edges += [(0, 2 + i) for i in range(n_left)]
    edges += [(1, 2 + n_left + i) for i in range(n_right)]
    return Network.from_owned_edges(n, edges)
