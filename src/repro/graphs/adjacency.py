"""Dense boolean-adjacency graph kernel.

This module is the performance substrate of the whole library.  All
networks in the paper's experiments are small (n <= ~200), so a dense
``uint8``/``bool`` adjacency matrix together with frontier-expansion BFS
implemented as numpy boolean matrix products is by far the fastest
representation available in pure Python: a full all-pairs-shortest-path
(APSP) computation costs ``diameter`` many ``n x n`` boolean matmuls and
no Python-level per-edge loop ever runs.

From ``bitkernel.MIN_N`` vertices upwards, the batched primitives
(:func:`all_pairs_distances_fast`, :func:`bfs_distances_multi`,
:func:`is_connected_without_vertex`) route to the word-parallel
:mod:`.bitkernel` engine — packed ``uint64`` bitsets, 64 vertices (or
searches) per word-op, bit-identical results.  The classic
boolean-matmul :func:`all_pairs_distances` is never routed: it stays
the reference oracle every other kernel is tested against.

Conventions
-----------
* Graphs are undirected and simple.  ``A`` is a symmetric ``(n, n)``
  boolean numpy array with a zero diagonal.
* Distances are returned as ``float64`` arrays with ``np.inf`` marking
  unreachable pairs.  Keeping the infinity explicit (instead of a large
  integer sentinel) makes the game-theoretic "disconnection costs
  infinitely much" rule fall out of ordinary arithmetic.
* All functions are pure: they never mutate their inputs.
"""

from __future__ import annotations

from collections import deque
from typing import Iterable, List, Sequence, Tuple

import numpy as np

from ..obs import metrics as obs_metrics
from . import bitkernel

__all__ = [
    "validate_adjacency",
    "empty_adjacency",
    "from_edges",
    "edge_list",
    "degrees",
    "bfs_distances",
    "bfs_distances_multi",
    "all_pairs_distances",
    "all_pairs_distances_fast",
    "distances_without_vertex",
    "connected_components",
    "is_connected",
    "is_connected_without_vertex",
    "bridges",
    "is_bridge",
    "eccentricities",
    "diameter",
    "num_edges",
    "neighbors",
]

# which kernel tier served each APSP-class query (pre-bound handles:
# one enabled-branch + dict update per call, nothing when disabled)
_APSP_TIER = obs_metrics.counter(
    "repro_apsp_calls_total",
    "APSP-class kernel invocations by tier",
    ("tier",))
_TIER_BITKERNEL = _APSP_TIER.labels(tier="bitkernel")
_TIER_BLAS = _APSP_TIER.labels(tier="blas_layered")
_TIER_MATMUL = _APSP_TIER.labels(tier="bool_matmul")


def validate_adjacency(A: np.ndarray) -> None:
    """Raise ``ValueError`` unless ``A`` is a valid symmetric adjacency matrix.

    A valid adjacency matrix is a square 2-D boolean (or 0/1) array with a
    zero diagonal and ``A == A.T``.
    """
    if A.ndim != 2 or A.shape[0] != A.shape[1]:
        raise ValueError(f"adjacency matrix must be square, got shape {A.shape}")
    if A.dtype != np.bool_:
        if not np.isin(A, (0, 1)).all():
            raise ValueError("adjacency matrix entries must be 0/1 or bool")
    B = A.astype(bool)
    if B.diagonal().any():
        raise ValueError("adjacency matrix must have a zero diagonal (no self-loops)")
    if not (B == B.T).all():
        raise ValueError("adjacency matrix must be symmetric (undirected graph)")


def empty_adjacency(n: int) -> np.ndarray:
    """Return the adjacency matrix of the empty graph on ``n`` vertices."""
    if n < 0:
        raise ValueError("n must be non-negative")
    return np.zeros((n, n), dtype=bool)


def from_edges(n: int, edges: Iterable[Tuple[int, int]]) -> np.ndarray:
    """Build an adjacency matrix from an edge list.

    Parameters
    ----------
    n:
        Number of vertices; vertices are ``0..n-1``.
    edges:
        Iterable of ``(u, v)`` pairs.  Duplicates are tolerated;
        self-loops raise.
    """
    A = empty_adjacency(n)
    for u, v in edges:
        if u == v:
            raise ValueError(f"self-loop ({u},{v}) not allowed")
        if not (0 <= u < n and 0 <= v < n):
            raise ValueError(f"edge ({u},{v}) out of range for n={n}")
        A[u, v] = True
        A[v, u] = True
    return A


def edge_list(A: np.ndarray) -> List[Tuple[int, int]]:
    """Return the sorted list of edges ``(u, v)`` with ``u < v``."""
    iu, iv = np.nonzero(np.triu(A, k=1))
    return list(zip(iu.tolist(), iv.tolist()))


def num_edges(A: np.ndarray) -> int:
    """Number of (undirected) edges."""
    return int(np.count_nonzero(A)) // 2


def degrees(A: np.ndarray) -> np.ndarray:
    """Vertex degrees as an int array."""
    return A.sum(axis=1).astype(np.int64)


def neighbors(A: np.ndarray, u: int) -> np.ndarray:
    """Sorted array of neighbours of ``u``."""
    return np.flatnonzero(A[u])


def bfs_distances(A: np.ndarray, source: int, mask: np.ndarray | None = None) -> np.ndarray:
    """Single-source BFS distances via numpy frontier expansion.

    Parameters
    ----------
    A:
        boolean adjacency matrix.
    source:
        source vertex.
    mask:
        optional boolean vector; ``False`` entries are treated as removed
        vertices (they get distance ``inf`` and are never traversed).

    Returns
    -------
    ``float64`` vector of distances, ``np.inf`` for unreachable vertices.
    """
    n = A.shape[0]
    dist = np.full(n, np.inf)
    if mask is not None and not mask[source]:
        return dist
    A = A.astype(bool, copy=False)
    visited = np.zeros(n, dtype=bool)
    if mask is not None:
        visited |= ~mask
    frontier = np.zeros(n, dtype=bool)
    frontier[source] = True
    d = 0
    while frontier.any():
        dist[frontier] = d
        visited |= frontier
        # next frontier: any unvisited vertex adjacent to the frontier
        frontier = (A[frontier].any(axis=0)) & ~visited
        d += 1
    if mask is not None:
        dist[~mask] = np.inf
    return dist


def bfs_distances_multi(A: np.ndarray, sources: Sequence[int], mask: np.ndarray | None = None) -> np.ndarray:
    """BFS distances from several sources at once.

    Returns a ``(len(sources), n)`` float matrix.  Implemented as layered
    expansion of all sources simultaneously; the layer product runs in
    float32 so it hits BLAS (an order of magnitude faster than the
    boolean matmul at the paper's sizes — path counts stay far below
    float32's 2^24 integer range, so thresholding back to boolean is
    exact).  Large batches on large graphs route to the word-parallel
    :mod:`.bitkernel` engine instead — bit-identical results, no dense
    layer product at all.
    """
    n = A.shape[0]
    k = len(sources)
    if bitkernel.enabled_multi(n, k):
        _TIER_BITKERNEL.inc()
        return bitkernel.bfs_distances_multi(A, sources, mask=mask)
    _TIER_BLAS.inc()
    Af = A.astype(np.float32)
    dist = np.full((k, n), np.inf)
    visited = np.zeros((k, n), dtype=bool)
    if mask is not None:
        visited |= ~mask[None, :]
    frontier = np.zeros((k, n), dtype=bool)
    for i, s in enumerate(sources):
        if mask is None or mask[s]:
            frontier[i, s] = True
    d = 0
    while frontier.any():
        dist[frontier] = d
        visited |= frontier
        # (k,n) @ (n,n) BLAS product: rows expand one BFS layer
        frontier = (frontier.astype(np.float32) @ Af > 0.0) & ~visited
        d += 1
    if mask is not None:
        dist[:, ~mask] = np.inf
    return dist


def all_pairs_distances_fast(A: np.ndarray, mask: np.ndarray | None = None) -> np.ndarray:
    """APSP via the fastest available layered expansion.

    Bit-for-bit identical results to :func:`all_pairs_distances`.  From
    ``bitkernel.MIN_N`` vertices upwards the word-parallel
    :mod:`.bitkernel` engine runs the whole APSP as packed bitset ops
    (64 searches per word-op); below that the layer products run as
    float32 GEMMs — either way roughly an order of magnitude faster
    than the boolean matmul at the paper's sizes.  The incremental
    distance engine uses this as its rebuild primitive; the classic
    boolean-matmul loop below stays the reference kernel.
    """
    n = A.shape[0]
    if n == 0:
        return np.zeros((0, 0))
    if bitkernel.enabled_for(n):
        _TIER_BITKERNEL.inc()
        return bitkernel.all_pairs_distances(A, mask=mask)
    return bfs_distances_multi(A, list(range(n)), mask=mask)


def all_pairs_distances(A: np.ndarray, mask: np.ndarray | None = None) -> np.ndarray:
    """All-pairs shortest path distances by layered boolean matmul.

    ``D[u, v]`` is the hop distance, ``np.inf`` when unreachable.  With a
    ``mask``, masked vertices are removed from the graph (rows/columns
    become ``inf`` except nothing: a removed vertex has no distances).

    The loop runs ``diameter(A)`` iterations; each iteration is a single
    ``(n, n) x (n, n)`` boolean product — no Python-level per-edge work.
    """
    n = A.shape[0]
    _TIER_MATMUL.inc()
    B = A.astype(bool, copy=True)
    if mask is not None:
        B[~mask, :] = False
        B[:, ~mask] = False
    dist = np.full((n, n), np.inf)
    alive = np.ones(n, dtype=bool) if mask is None else mask.astype(bool)
    idx = np.flatnonzero(alive)
    dist[idx, idx] = 0.0
    reached = np.eye(n, dtype=bool)
    reached[~alive, :] = False
    frontier = B.copy()
    frontier &= ~reached
    d = 1
    while frontier.any():
        dist[frontier] = d
        reached |= frontier
        frontier = (frontier @ B) & ~reached
        d += 1
    if mask is not None:
        dist[~alive, :] = np.inf
        dist[:, ~alive] = np.inf
    return dist


def distances_without_vertex(A: np.ndarray, u: int) -> np.ndarray:
    """APSP of the graph ``A - u`` (vertex ``u`` removed).

    Row/column ``u`` of the result are ``inf``.  This is the workhorse of
    the best-response engine: any strategy of agent ``u`` is evaluated
    against these distances.
    """
    mask = np.ones(A.shape[0], dtype=bool)
    mask[u] = False
    return all_pairs_distances(A, mask=mask)


def connected_components(A: np.ndarray) -> List[np.ndarray]:
    """Connected components as a list of sorted vertex arrays."""
    n = A.shape[0]
    seen = np.zeros(n, dtype=bool)
    comps: List[np.ndarray] = []
    for s in range(n):
        if seen[s]:
            continue
        dist = bfs_distances(A, s)
        comp = np.isfinite(dist)
        seen |= comp
        comps.append(np.flatnonzero(comp))
    return comps


def is_connected(A: np.ndarray) -> bool:
    """``True`` iff the graph is connected (the empty graph counts as connected)."""
    n = A.shape[0]
    if n <= 1:
        return True
    return bool(np.isfinite(bfs_distances(A, 0)).all())


def is_connected_without_vertex(A: np.ndarray, u: int) -> bool:
    """``True`` iff ``A - u`` is connected.

    Large graphs route to the packed-bitset reachability check in
    :mod:`.bitkernel` (no distance bookkeeping at all).
    """
    n = A.shape[0]
    if n <= 2:
        return True
    if bitkernel.enabled_for(n):
        return bitkernel.is_connected_without_vertex(A, u)
    mask = np.ones(n, dtype=bool)
    mask[u] = False
    start = 0 if u != 0 else 1
    dist = bfs_distances(A, start, mask=mask)
    return bool(np.isfinite(dist[mask]).all())


def bridges(A: np.ndarray) -> List[Tuple[int, int]]:
    """All bridge edges ``(u, v)`` with ``u < v`` (Tarjan low-link, iterative).

    A bridge is an edge whose removal disconnects its endpoints.  In the
    swap games a bridge can never be swapped or deleted by a rational
    agent (the network would disconnect, costing infinitely much), so
    bridge detection prunes the move enumeration.
    """
    n = A.shape[0]
    adj = [np.flatnonzero(A[v]).tolist() for v in range(n)]
    disc = [-1] * n
    low = [0] * n
    out: List[Tuple[int, int]] = []
    timer = 0
    for root in range(n):
        if disc[root] != -1:
            continue
        # iterative DFS: stack of (vertex, parent, neighbour-iterator-index)
        stack = [(root, -1, 0)]
        disc[root] = low[root] = timer
        timer += 1
        while stack:
            v, parent, i = stack[-1]
            if i < len(adj[v]):
                stack[-1] = (v, parent, i + 1)
                w = adj[v][i]
                if disc[w] == -1:
                    disc[w] = low[w] = timer
                    timer += 1
                    stack.append((w, v, 0))
                elif w != parent:
                    low[v] = min(low[v], disc[w])
            else:
                stack.pop()
                if parent != -1:
                    low[parent] = min(low[parent], low[v])
                    if low[v] > disc[parent]:
                        out.append((min(parent, v), max(parent, v)))
    out.sort()
    return out


def is_bridge(A: np.ndarray, u: int, v: int) -> bool:
    """``True`` iff edge ``(u, v)`` exists and is a bridge."""
    if not A[u, v]:
        return False
    B = A.copy()
    B[u, v] = B[v, u] = False
    return not np.isfinite(bfs_distances(B, u)[v])


def eccentricities(A: np.ndarray) -> np.ndarray:
    """Vector of vertex eccentricities (``inf`` if disconnected)."""
    D = all_pairs_distances(A)
    return D.max(axis=1)


def diameter(A: np.ndarray) -> float:
    """Graph diameter (``inf`` if disconnected, 0 for a single vertex)."""
    n = A.shape[0]
    if n == 0:
        return 0.0
    return float(all_pairs_distances(A).max())
