"""Graph substrate: dense adjacency kernel, properties and generators."""

from . import adjacency, properties  # noqa: F401

__all__ = ["adjacency", "properties", "generators"]


def __getattr__(name):  # lazily import generators (needs core types? no, keep cheap)
    if name == "generators":
        from . import generators

        return generators
    raise AttributeError(name)
