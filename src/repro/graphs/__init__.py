"""Graph substrate: dense adjacency kernel, bit-packed word-parallel
kernel, incremental distance engine, properties and generators."""

from . import adjacency, bitkernel, incremental, properties  # noqa: F401
from .incremental import (  # noqa: F401
    DenseBackend,
    DeviationCache,
    DistanceBackend,
    IncrementalAPSP,
    IncrementalBackend,
    make_backend,
)

__all__ = [
    "adjacency",
    "bitkernel",
    "incremental",
    "properties",
    "generators",
    "DistanceBackend",
    "DenseBackend",
    "IncrementalBackend",
    "IncrementalAPSP",
    "DeviationCache",
    "make_backend",
]


def __getattr__(name):  # lazily import generators (needs core types? no, keep cheap)
    if name == "generators":
        from . import generators

        return generators
    raise AttributeError(name)
