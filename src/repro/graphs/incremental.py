"""Incremental all-pairs distances for the dynamics hot loop.

Every step of the sequential process changes only edges incident to the
moving agent, yet the dense engine re-derives all shortest-path state
from scratch: one APSP for the cost vector, plus one APSP of ``G - u``
per scanned agent.  This module keeps that state alive across steps.

The core update (:func:`update_distances_after_vertex_change`) repairs a
full distance matrix after an arbitrary change of one vertex ``v``'s
incident edge set:

* *Deletions* can only lengthen pairs whose every shortest path used a
  deleted edge, i.e. pairs ``(x, y)`` with
  ``D[x, y] == D[x, a] + 1 + D[b, y]`` for a removed edge ``{a, b}``.
  Only the rows containing such pairs are re-expanded, by one
  multi-source layered BFS on the new graph.
* *Insertions* can only create shortcuts through ``v``; one fresh BFS
  from ``v`` prices them all via ``min(D, d_v[x] + d_v[y])``.

When the dirty row set exceeds ``dirty_threshold * n`` (e.g. a bridge
deletion in a tree, which invalidates a constant fraction of all pairs)
the repair is abandoned for the plain boolean-matmul APSP, so the
incremental engine is never asymptotically worse than the dense one.

On top of the kernel sit the :class:`DistanceBackend` implementations
the game/dynamics layers are parameterised over:

* :class:`DenseBackend` — recompute-from-scratch, the equivalence
  oracle;
* :class:`IncrementalBackend` — a maintained full-graph matrix, one
  maintained ``D(G - u)`` matrix per evaluated agent (the
  ``D(G - u)`` factorization of ``best_response.py`` means that matrix
  prices *every* deviation of ``u``), and a :class:`DeviationCache`
  memoising whole best-response computations.  For local games the
  cache key is the *dirty-agent digest* — the content digest of
  ``(D(G - u), u's incident ownership rows)`` — so a lookup hits
  whenever the agent's own world is unchanged, however different the
  rest of the network looks: revisited states (better-response
  cycles!), repeated scans, and remote changes invisible to the agent
  all cost one dict lookup.

The BFS/APSP primitives underneath route to the word-parallel
:mod:`.bitkernel` from ``bitkernel.MIN_N`` vertices upwards (see
:mod:`.adjacency`); everything stays bit-identical either way.

Memory: the incremental backend stores ``O(n^2)`` floats per evaluated
agent (~14 MB at n = 120).  That is the right trade for the paper's
instance sizes (n <= ~200); for much larger graphs cap the backend to
``dense`` or clear it periodically via :meth:`IncrementalBackend.reset`.

Everything here works on plain adjacency matrices plus a duck-typed
network object exposing ``.A`` and ``.state_key()`` — this module must
not import :mod:`repro.core` (the core imports the graphs layer).
"""

from __future__ import annotations

import hashlib
from typing import Dict, Iterable, Optional, Protocol, Sequence, Tuple

import numpy as np

from ..obs import metrics as obs_metrics
from . import adjacency as adj

__all__ = [
    "update_distances_after_vertex_change",
    "IncrementalAPSP",
    "DeviationCache",
    "DistanceBackend",
    "DenseBackend",
    "IncrementalBackend",
    "make_backend",
    "DEFAULT_DIRTY_THRESHOLD",
]

#: above this fraction of dirty rows, repairing costs more than redoing.
#: (the multi-source repair BFS runs on BLAS layers, so it stays cheap up
#: to half the rows; a full boolean-matmul APSP is ~20x a repair.)
DEFAULT_DIRTY_THRESHOLD = 0.5

# pre-bound obs handles: per-event cost is one attribute load + one
# enabled-branch + one dict update (nothing when the meter is off)
_BACKEND_CALLS = obs_metrics.counter(
    "repro_backend_calls_total",
    "DistanceBackend queries by backend and operation",
    ("backend", "op"))
_DENSE_FULL = _BACKEND_CALLS.labels(backend="dense", op="full")
_DENSE_DEV = _BACKEND_CALLS.labels(backend="dense", op="deviation")
_INC_FULL = _BACKEND_CALLS.labels(backend="incremental", op="full")
_INC_DEV = _BACKEND_CALLS.labels(backend="incremental", op="deviation")
_CACHE_EVENTS = obs_metrics.counter(
    "repro_deviation_cache_events_total",
    "DeviationCache hits, misses, invalidations and evictions",
    ("event",))
_CACHE_HIT = _CACHE_EVENTS.labels(event="hit")
_CACHE_MISS = _CACHE_EVENTS.labels(event="miss")
_CACHE_INVALIDATION = _CACHE_EVENTS.labels(event="invalidation")
_CACHE_EVICTION = _CACHE_EVENTS.labels(event="eviction")


def update_distances_after_vertex_change(
    D_old: np.ndarray,
    A_new: np.ndarray,
    v: int,
    deleted: Iterable[Tuple[int, int]] = (),
    mask: Optional[np.ndarray] = None,
    dirty_threshold: float = DEFAULT_DIRTY_THRESHOLD,
    stats: Optional[Dict[str, int]] = None,
) -> np.ndarray:
    """Repair an APSP matrix after vertex ``v``'s incident edges changed.

    Parameters
    ----------
    D_old:
        APSP matrix of the *old* graph (``inf`` for unreachable pairs;
        rows/columns of masked-out vertices all ``inf``).
    A_new:
        adjacency matrix of the new graph.  It may differ from the old
        one only in edges incident to ``v`` (``v`` alive under ``mask``).
    deleted:
        the removed edges, each incident to ``v``.  Insertions need not
        be listed — they are priced by the BFS from ``v``.
    mask:
        optional boolean vector of alive vertices (the ``G - u``
        matrices of the deviation engine exclude the deviator).
    dirty_threshold:
        fraction of rows above which a full APSP recompute is cheaper.
    stats:
        optional counter dict; taking the full-recompute fallback
        increments ``stats["fallback_rebuilds"]``.

    Returns
    -------
    A fresh APSP matrix of ``A_new`` (never aliases ``D_old``).
    """
    n = A_new.shape[0]
    deleted = list(deleted)
    sources = np.empty(0, dtype=np.int64)
    if deleted:
        finite = np.isfinite(D_old)
        dirty_rows = np.zeros(n, dtype=bool)
        for a, b in deleted:
            # pairs whose (some) shortest path crossed the removed edge;
            # the mirrored orientation is the transpose of this one
            # (D_old is symmetric), so one comparison covers both
            hit = (D_old == D_old[:, a, None] + 1.0 + D_old[None, b, :]) & finite
            hit[v, :] = False  # row/col v are rebuilt exactly below
            hit[:, v] = False
            dirty_rows |= hit.any(axis=1)
            dirty_rows |= hit.any(axis=0)
        sources = np.flatnonzero(dirty_rows)
        if sources.size > dirty_threshold * n:
            if stats is not None:
                stats["fallback_rebuilds"] = stats.get("fallback_rebuilds", 0) + 1
            return adj.all_pairs_distances_fast(A_new, mask=mask)
    d_v = adj.bfs_distances(A_new, v, mask=mask)
    D = D_old.copy()
    if sources.size:
        rows = adj.bfs_distances_multi(A_new, sources.tolist(), mask=mask)
        D[sources, :] = rows
        D[:, sources] = rows.T
    D[v, :] = d_v
    D[:, v] = d_v
    # shortcuts through v (covers all inserted edges, which touch v)
    np.minimum(D, d_v[:, None] + d_v[None, :], out=D)
    if mask is not None:
        D[~mask, :] = np.inf
        D[:, ~mask] = np.inf
        alive = np.flatnonzero(mask)
        D[alive, alive] = 0.0
    else:
        np.fill_diagonal(D, 0.0)
    return D


class IncrementalAPSP:
    """APSP of an evolving graph, maintained across single-vertex updates.

    The engine is *diff-based*: :meth:`distances` compares the queried
    adjacency against the snapshot of the previous query, so callers
    never have to notify it of moves (and stale-notification bugs are
    impossible).  When the diff is centred on one vertex the matrix is
    repaired incrementally; any other diff (first query, resized graph,
    multi-vertex change) falls back to a full rebuild.

    A diff spanning several vertices — an agent re-evaluated only after
    several other agents moved — is decomposed into single-vertex groups
    and repaired sequentially, one group at a time, as long as the group
    count stays below ``max_centers`` (default 4: with the bit-packed
    APSP a full rebuild costs only a couple of single-center repairs, so
    chasing a long move backlog loses to starting over).

    ``exclude`` pins a vertex as removed — this maintains the
    ``D(G - u)`` matrix of the deviation engine.  Changes incident only
    to the excluded vertex are invisible in ``G - u`` and cost nothing.
    """

    def __init__(
        self,
        exclude: Optional[int] = None,
        dirty_threshold: float = DEFAULT_DIRTY_THRESHOLD,
        max_centers: Optional[int] = None,
    ):
        self.exclude = exclude
        self.dirty_threshold = dirty_threshold
        self.max_centers = max_centers
        self._A: Optional[np.ndarray] = None
        self._A_bytes: Optional[bytes] = None  # memcmp fast path for no-op diffs
        self._D: Optional[np.ndarray] = None
        #: lazily computed content digest of ``_D`` (``None`` = stale)
        self._digest: Optional[bytes] = None
        # instrumentation (read by tests and the kernel benchmark);
        # fallback_rebuilds counts repairs that hit the dirty-threshold
        # and degenerated into a full recompute mid-update
        self.full_rebuilds = 0
        self.incremental_updates = 0
        self.noop_hits = 0
        self.clean_repairs = 0
        self.digest_recomputes = 0
        self._update_stats: Dict[str, int] = {"fallback_rebuilds": 0}

    def _mask_for(self, n: int) -> Optional[np.ndarray]:
        if self.exclude is None:
            return None
        mask = np.ones(n, dtype=bool)
        mask[self.exclude] = False
        return mask

    def _rebuild(self, A: np.ndarray) -> np.ndarray:
        self._D = adj.all_pairs_distances_fast(A, mask=self._mask_for(A.shape[0]))
        self._A = A.copy()
        self._A_bytes = self._A.tobytes()
        self._digest = None
        self.full_rebuilds += 1
        return self._D

    def distances(self, A: np.ndarray) -> np.ndarray:
        """Return the APSP matrix of ``A`` (minus ``exclude``), reusing
        and repairing the previous result when possible.

        The returned matrix is a snapshot — the engine never mutates it
        in place afterwards — but callers must not write to it either.
        """
        A = np.asarray(A, dtype=bool)
        if self._A is None or self._A.shape != A.shape:
            return self._rebuild(A)
        n = A.shape[0]
        A_bytes = A.tobytes() if A.flags.c_contiguous else None
        if A_bytes is not None and A_bytes == self._A_bytes:
            self.noop_hits += 1  # bytewise-identical snapshot: memcmp only
            return self._D
        iu, iv = np.nonzero(A != self._A)
        keep = iu < iv
        if self.exclude is not None:
            keep &= (iu != self.exclude) & (iv != self.exclude)
        iu, iv = iu[keep], iv[keep]
        if iu.size == 0:
            self.noop_hits += 1
            self._A = A.copy()  # resync excluded-vertex edges
            self._A_bytes = self._A.tobytes()
            return self._D
        limit = self.max_centers if self.max_centers is not None else 4
        # every group removes at most max-degree-in-diff edges, so
        # ceil(E / maxdeg) lower-bounds the group count — a backlog that
        # cannot fit the limit skips the grouping work entirely
        maxdeg = int((np.bincount(iu, minlength=n) + np.bincount(iv, minlength=n)).max())
        if iu.size > limit * maxdeg:
            return self._rebuild(A)
        groups = self._grouped_changes(iu, iv, n, stop_after=limit)
        if len(groups) > limit:
            return self._rebuild(A)
        mask = self._mask_for(n)
        D = self._D
        A_cur = self._A
        for center, group in groups:
            A_next = A_cur.copy()
            deleted = []
            for a, b in group:
                if A_cur[a, b] and not A[a, b]:
                    deleted.append((a, b))
                A_next[a, b] = A_next[b, a] = A[a, b]
            D = update_distances_after_vertex_change(
                D, A_next, center, deleted=deleted, mask=mask,
                dirty_threshold=self.dirty_threshold, stats=self._update_stats,
            )
            A_cur = A_next
        # a repair that left every distance untouched (e.g. a far-away
        # redundant edge) keeps the content digest valid — this is what
        # lets digest-keyed best-response caches survive remote moves
        if self._digest is not None:
            if np.array_equal(D, self._D):
                self.clean_repairs += 1
            else:
                self._digest = None
        self._D = D
        self._A = A.copy()
        self._A_bytes = A_bytes if A_bytes is not None else self._A.tobytes()
        self.incremental_updates += 1
        return self._D

    @staticmethod
    def _grouped_changes(iu: np.ndarray, iv: np.ndarray, n: int, stop_after: Optional[int] = None):
        """Decompose an edge diff (as ``u < v`` index arrays) into
        single-vertex groups.

        Greedily picks the vertex covering the most remaining changed
        edges; each group is that vertex plus its incident changes.  For
        a run of k single-agent moves this yields <= k groups.  With
        ``stop_after``, decomposition stops once that many groups exist
        and edges remain (the caller rebuilds anyway): the returned list
        then has ``stop_after + 1`` entries, the last one partial.
        """
        groups = []
        while iu.size:
            if stop_after is not None and len(groups) > stop_after:
                break
            counts = np.bincount(iu, minlength=n) + np.bincount(iv, minlength=n)
            center = int(counts.argmax())
            in_group = (iu == center) | (iv == center)
            groups.append((center, list(zip(iu[in_group].tolist(), iv[in_group].tolist()))))
            out = ~in_group
            iu, iv = iu[out], iv[out]
        return groups

    def digest(self) -> bytes:
        """16-byte BLAKE2b content digest of the current distance matrix.

        Computed lazily and invalidated only when a repair actually
        changed some distance — a no-op diff or a distance-preserving
        repair reuses the stored digest.  Two engines (for the same
        ``exclude``) agree on the digest iff their matrices are equal,
        so it is a sound cache key for anything that is a pure function
        of the distances.
        """
        if self._D is None:
            raise RuntimeError("digest() requires a distances() call first")
        if self._digest is None:
            # hop distances are exact integers <= n-1 (or inf), so a
            # narrowing cast is injective and hashes far fewer bytes:
            # below 255 vertices one byte per entry suffices, with 255
            # standing in for inf (a real 255 cannot occur)
            D = self._D
            if D.shape[0] <= 254:
                packed = np.minimum(D, 255.0).astype(np.uint8)
            else:
                packed = D.astype(np.float32)
            self._digest = hashlib.blake2b(packed.tobytes(), digest_size=16).digest()
            self.digest_recomputes += 1
        return self._digest

    def stats(self) -> Dict[str, int]:
        """Counter snapshot: rebuilds / repairs / no-op cache hits."""
        return {
            "full_rebuilds": self.full_rebuilds,
            "incremental_updates": self.incremental_updates,
            "fallback_rebuilds": self._update_stats["fallback_rebuilds"],
            "noop_hits": self.noop_hits,
            "clean_repairs": self.clean_repairs,
            "digest_recomputes": self.digest_recomputes,
        }


class DeviationCache:
    """Memoised best-response results keyed by ``(agent, key)``.

    The key is whatever pins *all* inputs of the best-response
    computation.  :class:`IncrementalBackend` uses, per agent:

    * for **local** games (SG/ASG/GBG/BG) the dirty-agent key — the
      content digest of ``D(G - u)`` plus ``u``'s incident ownership
      rows.  A move by ``v`` invalidates exactly the agents whose
      ``D(G - u)`` actually changed (the dirty region of the move) or
      whose own edges were touched; every *unaffected* agent keeps its
      key and is served from cache, so a policy scan recomputes
      ``Θ(|dirty|)`` best responses instead of ``Θ(n)``.
    * for non-local games the canonical full state key
      (:meth:`repro.core.network.Network.state_key`), which pins the
      entire ownership matrix and can only hit on exact state revisits.

    Either way a hit is only possible when the agent faces inputs
    bit-identical to the ones it was last priced under, so staleness is
    structurally impossible.  A ``game_token`` component keeps one
    physical cache safe to share between differently-parameterised
    games.
    """

    def __init__(self, max_entries: int = 200_000):
        self.max_entries = max_entries
        self._table: Dict[tuple, object] = {}
        self._last_key: Dict[tuple, bytes] = {}
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        self.invalidations = 0

    def __len__(self) -> int:
        return len(self._table)

    def get(self, game_token: tuple, agent: int, state_key: bytes):
        """Cached best response, or ``None`` on a miss.

        A miss where the *same* ``(game_token, agent)`` was previously
        priced under a *different* key is an **invalidation**: the
        agent's inputs changed and its old entry can never hit again.
        An agent whose move was a no-op keeps its key, so a no-op
        produces zero invalidations — the property the dirty-agent
        hypothesis suite pins.
        """
        hit = self._table.get((game_token, agent, state_key))
        if hit is None:
            self.misses += 1
            _CACHE_MISS.inc()
            last = self._last_key.get((game_token, agent))
            if last is not None and last != state_key:
                self.invalidations += 1
                _CACHE_INVALIDATION.inc()
        else:
            self.hits += 1
            _CACHE_HIT.inc()
        return hit

    def put(self, game_token: tuple, agent: int, state_key: bytes, br) -> None:
        """Store a freshly computed best response."""
        if len(self._table) >= self.max_entries:
            # wholesale eviction: entries are cheap to recompute and a
            # run that overflows the cap has long stopped cycling
            self._table.clear()
            self.evictions += 1
            _CACHE_EVICTION.inc()
        self._table[(game_token, agent, state_key)] = br
        self._last_key[(game_token, agent)] = state_key

    def clear(self) -> None:
        self._table.clear()
        self._last_key.clear()

    def stats(self) -> Dict[str, int]:
        """Counter snapshot: hits / misses / size / evictions /
        invalidations."""
        return {
            "hits": self.hits,
            "misses": self.misses,
            "entries": len(self._table),
            "evictions": self.evictions,
            "invalidations": self.invalidations,
        }


class DistanceBackend(Protocol):
    """The distance/deviation queries the game layer is generic over."""

    name: str

    def full_distances(self, net) -> np.ndarray:
        """APSP matrix of the current network."""

    def deviation_distances(self, net, u: int) -> np.ndarray:
        """APSP matrix of ``G - u`` (prices every deviation of ``u``)."""

    def cached_best_response(self, game, net, u: int):
        """Memoised best response for ``(game, net, u)``, or ``None``."""

    def store_best_response(self, game, net, u: int, br) -> None:
        """Record a freshly computed best response."""

    def reset(self) -> None:
        """Drop all cached state."""

    def stats(self) -> Dict[str, Dict[str, int]]:
        """Instrumentation counters (empty for stateless backends)."""


class DenseBackend:
    """Recompute-from-scratch backend — the equivalence oracle.

    Every query runs a full boolean-matmul APSP, exactly like the code
    before the incremental engine existed.  Stateless, so sharing one
    instance across runs is always safe.
    """

    name = "dense"

    def full_distances(self, net) -> np.ndarray:
        _DENSE_FULL.inc()
        return adj.all_pairs_distances(net.A)

    def deviation_distances(self, net, u: int) -> np.ndarray:
        _DENSE_DEV.inc()
        return adj.distances_without_vertex(net.A, u)

    def cached_best_response(self, game, net, u: int):
        return None

    def store_best_response(self, game, net, u: int, br) -> None:
        pass

    def reset(self) -> None:
        pass

    def stats(self) -> Dict[str, Dict[str, int]]:
        return {}


class IncrementalBackend:
    """Maintained distance state + deviation cache for one dynamics run.

    One :class:`IncrementalAPSP` tracks the full graph (the cost
    vector), one per evaluated agent tracks ``D(G - u)``, and a
    :class:`DeviationCache` short-circuits whole best-response
    computations on revisited states.  An instance is cheap to create;
    give each run its own (sharing is *correct* — everything is keyed or
    diffed against exact state — but mixes instrumentation counters).
    """

    name = "incremental"

    def __init__(
        self,
        dirty_threshold: float = DEFAULT_DIRTY_THRESHOLD,
        cache_best_responses: bool = True,
        max_cache_entries: int = 200_000,
    ):
        self.dirty_threshold = dirty_threshold
        self.cache_best_responses = cache_best_responses
        self._full = IncrementalAPSP(dirty_threshold=dirty_threshold)
        self._per_agent: Dict[int, IncrementalAPSP] = {}
        self.cache = DeviationCache(max_entries=max_cache_entries)
        self._pending_key: Optional[tuple] = None

    def full_distances(self, net) -> np.ndarray:
        _INC_FULL.inc()
        return self._full.distances(net.A)

    def _engine_for(self, u: int) -> IncrementalAPSP:
        engine = self._per_agent.get(u)
        if engine is None:
            engine = self._per_agent[u] = IncrementalAPSP(
                exclude=int(u), dirty_threshold=self.dirty_threshold
            )
        return engine

    def deviation_distances(self, net, u: int) -> np.ndarray:
        _INC_DEV.inc()
        return self._engine_for(u).distances(net.A)

    def _deviation_key(self, game, net, u: int) -> bytes:
        """Cache key for ``u``'s best response in the current state.

        For *local* games (``game.local_best_response``) the best
        response is a pure function of ``(rules, D(G - u), u's incident
        ownership rows)``, so the key is the per-agent digest of exactly
        those inputs — any move anywhere that leaves them intact hits
        the cache, however different the rest of the network looks.
        Non-local games (bilateral consent) and duck-typed networks
        without an ownership matrix fall back to the full canonical
        state key, which can only hit on exact state revisits.

        The two key families can never collide: a state key is ``n^2``
        bytes, a digest key ``16 + 2n`` — equal only at non-integer n.
        """
        owner = getattr(net, "owner", None)
        if owner is None or not getattr(game, "local_best_response", False):
            return net.state_key()
        engine = self._engine_for(u)
        engine.distances(net.A)  # sync the D(G - u) matrix and digest
        return (
            engine.digest()
            + owner[u].tobytes()
            + np.ascontiguousarray(owner[:, u]).tobytes()
        )

    def cached_best_response(self, game, net, u: int):
        if not self.cache_best_responses:
            return None
        token = game.cache_token()
        key = self._deviation_key(game, net, u)
        # a miss is immediately followed by store_best_response for the
        # same (game, net, u) with the network unchanged; remember the
        # key so the store does not re-derive it
        self._pending_key = (token, int(u), key)
        return self.cache.get(token, int(u), key)

    def store_best_response(self, game, net, u: int, br) -> None:
        if not self.cache_best_responses:
            return
        token = game.cache_token()
        pending = self._pending_key
        if pending is not None and pending[0] == token and pending[1] == int(u):
            key = pending[2]
        else:
            key = self._deviation_key(game, net, u)
        self._pending_key = None
        self.cache.put(token, int(u), key, br)

    def reset(self) -> None:
        self._full = IncrementalAPSP(dirty_threshold=self.dirty_threshold)
        self._per_agent.clear()
        self.cache.clear()
        self._pending_key = None

    def stats(self) -> Dict[str, Dict[str, int]]:
        agg: Dict[str, int] = {}
        for engine in self._per_agent.values():
            for key, value in engine.stats().items():
                agg[key] = agg.get(key, 0) + value
        if not agg:
            agg = {key: 0 for key in IncrementalAPSP().stats()}
        return {
            "full_graph": self._full.stats(),
            "deviation": agg,
            "cache": self.cache.stats(),
        }


def make_backend(spec) -> DistanceBackend:
    """Resolve a backend spec: ``"dense"``, ``"incremental"``, ``None``
    (= dense) or an already-built backend instance (returned as-is)."""
    if spec is None or spec == "dense":
        return DenseBackend()
    if spec == "incremental":
        return IncrementalBackend()
    if hasattr(spec, "full_distances") and hasattr(spec, "deviation_distances"):
        return spec
    raise ValueError(
        f"unknown distance backend {spec!r}: expected 'dense', 'incremental' "
        "or a DistanceBackend instance"
    )
