"""Incremental all-pairs distances for the dynamics hot loop.

Every step of the sequential process changes only edges incident to the
moving agent, yet the dense engine re-derives all shortest-path state
from scratch: one APSP for the cost vector, plus one APSP of ``G - u``
per scanned agent.  This module keeps that state alive across steps.

The core update (:func:`update_distances_after_vertex_change`) repairs a
full distance matrix after an arbitrary change of one vertex ``v``'s
incident edge set:

* *Deletions* can only lengthen pairs whose every shortest path used a
  deleted edge, i.e. pairs ``(x, y)`` with
  ``D[x, y] == D[x, a] + 1 + D[b, y]`` for a removed edge ``{a, b}``.
  Only the rows containing such pairs are re-expanded, by one
  multi-source layered BFS on the new graph.
* *Insertions* can only create shortcuts through ``v``; one fresh BFS
  from ``v`` prices them all via ``min(D, d_v[x] + d_v[y])``.

When the dirty row set exceeds ``dirty_threshold * n`` (e.g. a bridge
deletion in a tree, which invalidates a constant fraction of all pairs)
the repair is abandoned for the plain boolean-matmul APSP, so the
incremental engine is never asymptotically worse than the dense one.

On top of the kernel sit the :class:`DistanceBackend` implementations
the game/dynamics layers are parameterised over:

* :class:`DenseBackend` — recompute-from-scratch, the equivalence
  oracle;
* :class:`IncrementalBackend` — a maintained full-graph matrix, one
  maintained ``D(G - u)`` matrix per evaluated agent (the
  ``D(G - u)`` factorization of ``best_response.py`` means that matrix
  prices *every* deviation of ``u``), and a :class:`DeviationCache`
  memoising whole best-response computations by
  ``(agent, canonical state)`` — revisited states (better-response
  cycles!) and repeated scans of the same state cost one dict lookup.

Memory: the incremental backend stores ``O(n^2)`` floats per evaluated
agent (~14 MB at n = 120).  That is the right trade for the paper's
instance sizes (n <= ~200); for much larger graphs cap the backend to
``dense`` or clear it periodically via :meth:`IncrementalBackend.reset`.

Everything here works on plain adjacency matrices plus a duck-typed
network object exposing ``.A`` and ``.state_key()`` — this module must
not import :mod:`repro.core` (the core imports the graphs layer).
"""

from __future__ import annotations

from typing import Dict, Iterable, Optional, Protocol, Sequence, Tuple

import numpy as np

from . import adjacency as adj

__all__ = [
    "update_distances_after_vertex_change",
    "IncrementalAPSP",
    "DeviationCache",
    "DistanceBackend",
    "DenseBackend",
    "IncrementalBackend",
    "make_backend",
    "DEFAULT_DIRTY_THRESHOLD",
]

#: above this fraction of dirty rows, repairing costs more than redoing.
#: (the multi-source repair BFS runs on BLAS layers, so it stays cheap up
#: to half the rows; a full boolean-matmul APSP is ~20x a repair.)
DEFAULT_DIRTY_THRESHOLD = 0.5


def update_distances_after_vertex_change(
    D_old: np.ndarray,
    A_new: np.ndarray,
    v: int,
    deleted: Iterable[Tuple[int, int]] = (),
    mask: Optional[np.ndarray] = None,
    dirty_threshold: float = DEFAULT_DIRTY_THRESHOLD,
    stats: Optional[Dict[str, int]] = None,
) -> np.ndarray:
    """Repair an APSP matrix after vertex ``v``'s incident edges changed.

    Parameters
    ----------
    D_old:
        APSP matrix of the *old* graph (``inf`` for unreachable pairs;
        rows/columns of masked-out vertices all ``inf``).
    A_new:
        adjacency matrix of the new graph.  It may differ from the old
        one only in edges incident to ``v`` (``v`` alive under ``mask``).
    deleted:
        the removed edges, each incident to ``v``.  Insertions need not
        be listed — they are priced by the BFS from ``v``.
    mask:
        optional boolean vector of alive vertices (the ``G - u``
        matrices of the deviation engine exclude the deviator).
    dirty_threshold:
        fraction of rows above which a full APSP recompute is cheaper.
    stats:
        optional counter dict; taking the full-recompute fallback
        increments ``stats["fallback_rebuilds"]``.

    Returns
    -------
    A fresh APSP matrix of ``A_new`` (never aliases ``D_old``).
    """
    n = A_new.shape[0]
    deleted = list(deleted)
    sources = np.empty(0, dtype=np.int64)
    if deleted:
        finite = np.isfinite(D_old)
        dirty = np.zeros((n, n), dtype=bool)
        for a, b in deleted:
            # pairs whose (some) shortest path crossed the removed edge,
            # in either direction
            dirty |= D_old == D_old[:, a, None] + 1.0 + D_old[None, b, :]
            dirty |= D_old == D_old[:, b, None] + 1.0 + D_old[None, a, :]
        dirty &= finite
        dirty[v, :] = False  # row/col v are rebuilt exactly below
        dirty[:, v] = False
        sources = np.flatnonzero(dirty.any(axis=1))
        if sources.size > dirty_threshold * n:
            if stats is not None:
                stats["fallback_rebuilds"] = stats.get("fallback_rebuilds", 0) + 1
            return adj.all_pairs_distances_fast(A_new, mask=mask)
    d_v = adj.bfs_distances(A_new, v, mask=mask)
    D = D_old.copy()
    if sources.size:
        rows = adj.bfs_distances_multi(A_new, sources.tolist(), mask=mask)
        D[sources, :] = rows
        D[:, sources] = rows.T
    D[v, :] = d_v
    D[:, v] = d_v
    # shortcuts through v (covers all inserted edges, which touch v)
    np.minimum(D, d_v[:, None] + d_v[None, :], out=D)
    if mask is not None:
        D[~mask, :] = np.inf
        D[:, ~mask] = np.inf
        alive = np.flatnonzero(mask)
        D[alive, alive] = 0.0
    else:
        np.fill_diagonal(D, 0.0)
    return D


class IncrementalAPSP:
    """APSP of an evolving graph, maintained across single-vertex updates.

    The engine is *diff-based*: :meth:`distances` compares the queried
    adjacency against the snapshot of the previous query, so callers
    never have to notify it of moves (and stale-notification bugs are
    impossible).  When the diff is centred on one vertex the matrix is
    repaired incrementally; any other diff (first query, resized graph,
    multi-vertex change) falls back to a full rebuild.

    A diff spanning several vertices — an agent re-evaluated only after
    several other agents moved — is decomposed into single-vertex groups
    and repaired sequentially, one group at a time, as long as the group
    count stays below ``max_centers`` (default ``max(4, n // 8)``; a
    repair is ~20x cheaper than a rebuild, so chasing a handful of moves
    beats starting over).

    ``exclude`` pins a vertex as removed — this maintains the
    ``D(G - u)`` matrix of the deviation engine.  Changes incident only
    to the excluded vertex are invisible in ``G - u`` and cost nothing.
    """

    def __init__(
        self,
        exclude: Optional[int] = None,
        dirty_threshold: float = DEFAULT_DIRTY_THRESHOLD,
        max_centers: Optional[int] = None,
    ):
        self.exclude = exclude
        self.dirty_threshold = dirty_threshold
        self.max_centers = max_centers
        self._A: Optional[np.ndarray] = None
        self._D: Optional[np.ndarray] = None
        # instrumentation (read by tests and the kernel benchmark);
        # fallback_rebuilds counts repairs that hit the dirty-threshold
        # and degenerated into a full recompute mid-update
        self.full_rebuilds = 0
        self.incremental_updates = 0
        self.noop_hits = 0
        self._update_stats: Dict[str, int] = {"fallback_rebuilds": 0}

    def _mask_for(self, n: int) -> Optional[np.ndarray]:
        if self.exclude is None:
            return None
        mask = np.ones(n, dtype=bool)
        mask[self.exclude] = False
        return mask

    def _rebuild(self, A: np.ndarray) -> np.ndarray:
        self._D = adj.all_pairs_distances_fast(A, mask=self._mask_for(A.shape[0]))
        self._A = A.copy()
        self.full_rebuilds += 1
        return self._D

    def distances(self, A: np.ndarray) -> np.ndarray:
        """Return the APSP matrix of ``A`` (minus ``exclude``), reusing
        and repairing the previous result when possible.

        The returned matrix is a snapshot — the engine never mutates it
        in place afterwards — but callers must not write to it either.
        """
        A = np.asarray(A, dtype=bool)
        if self._A is None or self._A.shape != A.shape:
            return self._rebuild(A)
        diff = A != self._A
        if self.exclude is not None:
            diff[self.exclude, :] = False
            diff[:, self.exclude] = False
        if not diff.any():
            self.noop_hits += 1
            self._A = A.copy()  # resync excluded-vertex edges
            return self._D
        groups = self._grouped_changes(diff)
        n = A.shape[0]
        limit = self.max_centers if self.max_centers is not None else max(4, n // 8)
        if len(groups) > limit:
            return self._rebuild(A)
        mask = self._mask_for(n)
        D = self._D
        A_cur = self._A
        for center, group in groups:
            A_next = A_cur.copy()
            deleted = []
            for a, b in group:
                if A_cur[a, b] and not A[a, b]:
                    deleted.append((a, b))
                A_next[a, b] = A_next[b, a] = A[a, b]
            D = update_distances_after_vertex_change(
                D, A_next, center, deleted=deleted, mask=mask,
                dirty_threshold=self.dirty_threshold, stats=self._update_stats,
            )
            A_cur = A_next
        self._D = D
        self._A = A.copy()
        self.incremental_updates += 1
        return self._D

    @staticmethod
    def _grouped_changes(diff: np.ndarray):
        """Decompose a symmetric edge diff into single-vertex groups.

        Greedily picks the vertex covering the most remaining changed
        edges; each group is that vertex plus its incident changes.  For
        a run of k single-agent moves this yields <= k groups.
        """
        iu, iv = np.nonzero(np.triu(diff, 1))
        remaining = list(zip(iu.tolist(), iv.tolist()))
        groups = []
        while remaining:
            counts: Dict[int, int] = {}
            for a, b in remaining:
                counts[a] = counts.get(a, 0) + 1
                counts[b] = counts.get(b, 0) + 1
            center = max(counts, key=counts.get)
            group = [e for e in remaining if center in e]
            remaining = [e for e in remaining if center not in e]
            groups.append((center, group))
        return groups

    def stats(self) -> Dict[str, int]:
        """Counter snapshot: rebuilds / repairs / no-op cache hits."""
        return {
            "full_rebuilds": self.full_rebuilds,
            "incremental_updates": self.incremental_updates,
            "fallback_rebuilds": self._update_stats["fallback_rebuilds"],
            "noop_hits": self.noop_hits,
        }


class DeviationCache:
    """Memoised best-response results keyed by ``(agent, state)``.

    The canonical state key (:meth:`repro.core.network.Network.state_key`)
    pins the *entire* ownership matrix, so a hit is only possible when
    agent ``u`` faces the exact network it was last priced in — any move
    incident to ``u``, and any move elsewhere that alters ``G - u``,
    changes the key and forces a fresh evaluation.  That makes staleness
    structurally impossible while still collapsing the two places the
    dynamics re-asks identical questions: repeated scans of one state by
    the move policy, and revisited states along better-response cycles.

    A ``game_token`` component keeps one physical cache safe to share
    between differently-parameterised games.
    """

    def __init__(self, max_entries: int = 200_000):
        self.max_entries = max_entries
        self._table: Dict[tuple, object] = {}
        self.hits = 0
        self.misses = 0
        self.evictions = 0

    def __len__(self) -> int:
        return len(self._table)

    def get(self, game_token: tuple, agent: int, state_key: bytes):
        """Cached best response, or ``None`` on a miss."""
        hit = self._table.get((game_token, agent, state_key))
        if hit is None:
            self.misses += 1
        else:
            self.hits += 1
        return hit

    def put(self, game_token: tuple, agent: int, state_key: bytes, br) -> None:
        """Store a freshly computed best response."""
        if len(self._table) >= self.max_entries:
            # wholesale eviction: entries are cheap to recompute and a
            # run that overflows the cap has long stopped cycling
            self._table.clear()
            self.evictions += 1
        self._table[(game_token, agent, state_key)] = br

    def clear(self) -> None:
        self._table.clear()

    def stats(self) -> Dict[str, int]:
        """Counter snapshot: hits / misses / size / evictions."""
        return {
            "hits": self.hits,
            "misses": self.misses,
            "entries": len(self._table),
            "evictions": self.evictions,
        }


class DistanceBackend(Protocol):
    """The distance/deviation queries the game layer is generic over."""

    name: str

    def full_distances(self, net) -> np.ndarray:
        """APSP matrix of the current network."""

    def deviation_distances(self, net, u: int) -> np.ndarray:
        """APSP matrix of ``G - u`` (prices every deviation of ``u``)."""

    def cached_best_response(self, game, net, u: int):
        """Memoised best response for ``(game, net, u)``, or ``None``."""

    def store_best_response(self, game, net, u: int, br) -> None:
        """Record a freshly computed best response."""

    def reset(self) -> None:
        """Drop all cached state."""

    def stats(self) -> Dict[str, Dict[str, int]]:
        """Instrumentation counters (empty for stateless backends)."""


class DenseBackend:
    """Recompute-from-scratch backend — the equivalence oracle.

    Every query runs a full boolean-matmul APSP, exactly like the code
    before the incremental engine existed.  Stateless, so sharing one
    instance across runs is always safe.
    """

    name = "dense"

    def full_distances(self, net) -> np.ndarray:
        return adj.all_pairs_distances(net.A)

    def deviation_distances(self, net, u: int) -> np.ndarray:
        return adj.distances_without_vertex(net.A, u)

    def cached_best_response(self, game, net, u: int):
        return None

    def store_best_response(self, game, net, u: int, br) -> None:
        pass

    def reset(self) -> None:
        pass

    def stats(self) -> Dict[str, Dict[str, int]]:
        return {}


class IncrementalBackend:
    """Maintained distance state + deviation cache for one dynamics run.

    One :class:`IncrementalAPSP` tracks the full graph (the cost
    vector), one per evaluated agent tracks ``D(G - u)``, and a
    :class:`DeviationCache` short-circuits whole best-response
    computations on revisited states.  An instance is cheap to create;
    give each run its own (sharing is *correct* — everything is keyed or
    diffed against exact state — but mixes instrumentation counters).
    """

    name = "incremental"

    def __init__(
        self,
        dirty_threshold: float = DEFAULT_DIRTY_THRESHOLD,
        cache_best_responses: bool = True,
        max_cache_entries: int = 200_000,
    ):
        self.dirty_threshold = dirty_threshold
        self.cache_best_responses = cache_best_responses
        self._full = IncrementalAPSP(dirty_threshold=dirty_threshold)
        self._per_agent: Dict[int, IncrementalAPSP] = {}
        self.cache = DeviationCache(max_entries=max_cache_entries)

    def full_distances(self, net) -> np.ndarray:
        return self._full.distances(net.A)

    def deviation_distances(self, net, u: int) -> np.ndarray:
        engine = self._per_agent.get(u)
        if engine is None:
            engine = self._per_agent[u] = IncrementalAPSP(
                exclude=int(u), dirty_threshold=self.dirty_threshold
            )
        return engine.distances(net.A)

    def cached_best_response(self, game, net, u: int):
        if not self.cache_best_responses:
            return None
        return self.cache.get(game.cache_token(), int(u), net.state_key())

    def store_best_response(self, game, net, u: int, br) -> None:
        if self.cache_best_responses:
            self.cache.put(game.cache_token(), int(u), net.state_key(), br)

    def reset(self) -> None:
        self._full = IncrementalAPSP(dirty_threshold=self.dirty_threshold)
        self._per_agent.clear()
        self.cache.clear()

    def stats(self) -> Dict[str, Dict[str, int]]:
        agg = {
            "full_rebuilds": 0,
            "incremental_updates": 0,
            "fallback_rebuilds": 0,
            "noop_hits": 0,
        }
        for engine in self._per_agent.values():
            for key, value in engine.stats().items():
                agg[key] += value
        return {
            "full_graph": self._full.stats(),
            "deviation": agg,
            "cache": self.cache.stats(),
        }


def make_backend(spec) -> DistanceBackend:
    """Resolve a backend spec: ``"dense"``, ``"incremental"``, ``None``
    (= dense) or an already-built backend instance (returned as-is)."""
    if spec is None or spec == "dense":
        return DenseBackend()
    if spec == "incremental":
        return IncrementalBackend()
    if hasattr(spec, "full_distances") and hasattr(spec, "deviation_distances"):
        return spec
    raise ValueError(
        f"unknown distance backend {spec!r}: expected 'dense', 'incremental' "
        "or a DistanceBackend instance"
    )
