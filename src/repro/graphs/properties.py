"""Structural graph properties used throughout the paper.

Definitions follow Section 2 of Kawald & Lenzner (SPAA'13):

* the *sorted cost vector* of a network (Definition 2.5) lists the MAX
  costs (eccentricities) of all agents in non-increasing order;
* a *centre vertex* is an agent of minimum eccentricity;
* a *longest path of agent v* (Definition 2.7) is a simple path starting
  at ``v`` whose length equals ``v``'s eccentricity;
* ``k``-median sets minimise the total distance from all vertices to the
  set — the proofs of Theorems 5.1/5.2 use 1- and 2-medians to identify
  optimal buy strategies.
"""

from __future__ import annotations

from itertools import combinations
from typing import List, Sequence, Tuple

import numpy as np

from . import adjacency as adj

__all__ = [
    "sorted_cost_vector",
    "center_vertices",
    "is_tree",
    "is_forest",
    "is_star",
    "is_double_star",
    "longest_paths_from",
    "vertex_on_all_longest_paths",
    "k_median_sets",
    "one_median_vertices",
    "two_median_sets",
    "k_center_vertices",
]


def sorted_cost_vector(A: np.ndarray) -> np.ndarray:
    """Sorted (non-increasing) vector of eccentricities — Definition 2.5.

    Lemma 2.6 shows this vector, compared lexicographically, is a
    generalized ordinal potential for the MAX-SG on trees.
    """
    ecc = adj.eccentricities(A)
    return np.sort(ecc)[::-1]


def center_vertices(A: np.ndarray) -> np.ndarray:
    """All vertices of minimum eccentricity ("centre-vertices")."""
    ecc = adj.eccentricities(A)
    return np.flatnonzero(ecc == ecc.min())


def is_forest(A: np.ndarray) -> bool:
    """``True`` iff the graph has no cycles."""
    n = A.shape[0]
    m = adj.num_edges(A)
    comps = adj.connected_components(A)
    return m == n - len(comps)


def is_tree(A: np.ndarray) -> bool:
    """``True`` iff the graph is connected and acyclic."""
    n = A.shape[0]
    return adj.num_edges(A) == n - 1 and adj.is_connected(A)


def is_star(A: np.ndarray) -> bool:
    """``True`` iff the graph is a star (one centre adjacent to all others).

    Degenerate cases: graphs on <= 2 vertices count as stars.
    """
    n = A.shape[0]
    if n <= 2:
        return adj.num_edges(A) == max(0, n - 1)
    if not is_tree(A):
        return False
    deg = adj.degrees(A)
    return bool((deg.max() == n - 1) and (np.sort(deg)[:-1] == 1).all())


def is_double_star(A: np.ndarray) -> bool:
    """``True`` iff the graph is a double star.

    A double star is a tree with exactly two adjacent non-leaf vertices
    (diameter 3).  Alon et al. (SPAA'10) show stars and double stars are
    the only stable trees of the MAX-SG, which is why tree dynamics must
    end in one of them.
    """
    n = A.shape[0]
    if not is_tree(A) or n < 4:
        return False
    deg = adj.degrees(A)
    internal = np.flatnonzero(deg > 1)
    if len(internal) != 2:
        return False
    u, v = internal
    return bool(A[u, v])


def longest_paths_from(A: np.ndarray, v: int) -> List[List[int]]:
    """All longest *shortest* paths of agent ``v`` (Definition 2.7).

    A longest path of ``v`` is a simple path starting at ``v`` of length
    ``ecc(v)``.  On trees, which is where the paper uses the notion,
    every such path is the unique tree path to some farthest vertex, so
    we enumerate shortest paths to the farthest vertices.  (On general
    graphs we also return geodesics, which is the natural analogue.)
    """
    D = adj.all_pairs_distances(A)
    dist_v = D[v]
    ecc = dist_v.max()
    if not np.isfinite(ecc):
        raise ValueError("longest paths undefined on a disconnected graph")
    targets = np.flatnonzero(dist_v == ecc)
    paths: List[List[int]] = []

    def extend(path: List[int], t: int) -> None:
        u = path[-1]
        if u == t:
            paths.append(list(path))
            return
        for w in adj.neighbors(A, u):
            if dist_v[w] == dist_v[u] + 1 and D[w, t] == D[u, t] - 1:
                path.append(int(w))
                extend(path, t)
                path.pop()

    for t in targets:
        extend([v], int(t))
    return paths


def vertex_on_all_longest_paths(A: np.ndarray, x: int) -> bool:
    """Check Lemma 2.8's property: does ``x`` lie on every longest path?

    Lemma 2.8 states that in a tree every centre-vertex lies on all
    longest paths of all agents.
    """
    n = A.shape[0]
    for v in range(n):
        for path in longest_paths_from(A, v):
            if x not in path:
                return False
    return True


def k_median_sets(A: np.ndarray, k: int, candidates: Sequence[int] | None = None) -> Tuple[float, List[Tuple[int, ...]]]:
    """All optimal ``k``-median sets and their cost.

    The cost of a set ``S`` is ``sum_v min_{s in S} d(v, s)``.  Used to
    identify the optimal multi-edge buy strategies in the bilateral
    proofs (Theorems 5.1 and 5.2).  Exhaustive over ``C(n, k)`` subsets —
    fine for the instance sizes in the paper (n <= 24).
    """
    n = A.shape[0]
    D = adj.all_pairs_distances(A)
    pool = range(n) if candidates is None else candidates
    best = np.inf
    best_sets: List[Tuple[int, ...]] = []
    for S in combinations(pool, k):
        cost = float(D[list(S)].min(axis=0).sum())
        if cost < best - 1e-12:
            best = cost
            best_sets = [S]
        elif abs(cost - best) <= 1e-12:
            best_sets.append(S)
    return best, best_sets


def one_median_vertices(A: np.ndarray) -> np.ndarray:
    """All 1-median vertices (minimum total distance to everyone)."""
    _, sets = k_median_sets(A, 1)
    return np.array(sorted(s[0] for s in sets))


def two_median_sets(A: np.ndarray) -> List[Tuple[int, int]]:
    """All optimal 2-median sets."""
    _, sets = k_median_sets(A, 2)
    return [tuple(sorted(s)) for s in sets]  # type: ignore[misc]


def k_center_vertices(A: np.ndarray, k: int = 1) -> Tuple[float, List[Tuple[int, ...]]]:
    """All optimal ``k``-centre sets (minimise max distance to the set)."""
    n = A.shape[0]
    D = adj.all_pairs_distances(A)
    best = np.inf
    best_sets: List[Tuple[int, ...]] = []
    for S in combinations(range(n), k):
        cost = float(D[list(S)].min(axis=0).max())
        if cost < best - 1e-12:
            best = cost
            best_sets = [S]
        elif abs(cost - best) <= 1e-12:
            best_sets.append(S)
    return best, best_sets
