"""Bit-packed (word-parallel) distance kernel.

BFS state is packed into ``uint64`` words so that one bitwise AND/OR
advances 64 breadth-first searches (or 64 vertices) at once, replacing
the byte-per-vertex boolean matmuls / float32 GEMMs of
:mod:`.adjacency`.

Two packings are used:

* **Single-source** (:func:`bfs_distances`): adjacency rows are packed
  into ``(n, ceil(n/64))`` uint64 words; one frontier expansion is an
  OR-reduction of the packed rows of the frontier vertices.
* **Multi-source** (:func:`bfs_distances_multi`,
  :func:`all_pairs_distances`): the ``k`` simultaneous BFS frontiers are
  packed *across sources* — ``F[v]`` holds bit ``s`` iff vertex ``v`` is
  in source ``s``'s frontier.  One layer for all ``k`` searches is::

      next[v] = OR_{u in N(v)} F[u]      (then & ~visited [& alive])

  implemented as one gather of ``F`` along a precomputed flat neighbour
  list plus a single segmented ``bitwise_or.reduceat`` — two C calls per
  layer, no per-layer ``nonzero``/``unpackbits`` of the frontier, and no
  dense matrix product.  Distances fall out of the counting identity
  ``dist[v, s] = #{layers d : v not yet visited by s after layer d}``,
  accumulated with one ``unpackbits`` + add per layer.

Total APSP work is ``O(diam * m * n / 64)`` word-ops for ``m`` edges —
on the paper's sparse dynamics graphs this overtakes the float32-GEMM
layering (``O(diam * n^3)`` flops) from roughly ``n >= MIN_N`` and is an
order of magnitude ahead by n ≈ 500.

Everything here returns *bit-identical* results to the dense kernels —
all are exact unit-weight BFS — so the routing in :mod:`.adjacency` is a
pure performance decision.  The classic boolean-matmul
:func:`adjacency.all_pairs_distances` stays the reference oracle and is
never routed here.
"""

from __future__ import annotations

import sys
from contextlib import contextmanager
from typing import Optional, Sequence

import numpy as np

__all__ = [
    "MIN_N",
    "enabled_for",
    "enabled_multi",
    "forced",
    "pack_rows",
    "unpack_rows",
    "bfs_distances",
    "bfs_distances_multi",
    "all_pairs_distances",
    "is_connected_without_vertex",
]

#: below this many vertices the packing/CSR overhead outweighs the
#: word-parallel win over the BLAS-layered kernel (measured in
#: ``benchmarks/bench_kernel.py``).
MIN_N = 96

#: tri-state test/benchmark override: ``None`` = size heuristic,
#: ``True``/``False`` = force on/off.
_FORCE: Optional[bool] = None

#: the uint64 view of the packed uint8 buffer assumes little-endian words.
_LITTLE_ENDIAN = sys.byteorder == "little"


def enabled_for(n: int) -> bool:
    """Whether :mod:`.adjacency` should route a size-``n`` query here."""
    if _FORCE is not None:
        return _FORCE
    return _LITTLE_ENDIAN and n >= MIN_N


def enabled_multi(n: int, k: int) -> bool:
    """Routing heuristic for a ``k``-source BFS on ``n`` vertices.

    The word-parallel cost is nearly flat in ``k`` (the CSR gather per
    layer is the fixed cost) while the GEMM layering scales linearly, so
    the crossover sits near ``k ≈ 6144 / n`` sources, never below 16
    (measured in ``benchmarks/bench_kernel.py`` on the paper's sparse
    dynamics graphs).
    """
    if _FORCE is not None:
        return _FORCE
    return _LITTLE_ENDIAN and n >= MIN_N and k >= max(16, 6144 // n)


@contextmanager
def forced(value: Optional[bool]):
    """Force the kernel on/off inside a ``with`` block (tests, benchmarks)."""
    global _FORCE
    prev = _FORCE
    _FORCE = value
    try:
        yield
    finally:
        _FORCE = prev


def pack_rows(B: np.ndarray) -> np.ndarray:
    """Pack a ``(k, n)`` boolean matrix into ``(k, ceil(n/64))`` uint64 rows.

    Bit ``v`` of ``out[i, v // 64]`` (little-endian bit order) is
    ``B[i, v]``; trailing pad bits are zero.
    """
    B = np.ascontiguousarray(B, dtype=bool)
    k, n = B.shape
    nbytes = ((n + 63) // 64) * 8
    packed = np.packbits(B, axis=1, bitorder="little")
    if packed.shape[1] != nbytes:
        packed = np.concatenate(
            [packed, np.zeros((k, nbytes - packed.shape[1]), dtype=np.uint8)], axis=1
        )
    return packed.view(np.uint64)


def unpack_rows(P: np.ndarray, n: int) -> np.ndarray:
    """Inverse of :func:`pack_rows`: ``(k, W)`` uint64 → ``(k, n)`` bool."""
    bits = np.unpackbits(P.view(np.uint8), axis=1, count=n, bitorder="little")
    return bits.view(np.bool_)


def bfs_distances(A: np.ndarray, source: int, mask: Optional[np.ndarray] = None) -> np.ndarray:
    """Single-source BFS distances, packed-row frontier expansion.

    Semantics identical to :func:`adjacency.bfs_distances`: ``float64``
    vector, ``inf`` for unreachable or masked-out vertices.
    """
    n = A.shape[0]
    dist = np.full(n, np.inf)
    if mask is not None and not mask[source]:
        return dist
    P = pack_rows(A)
    not_visited = ~np.zeros(P.shape[1], dtype=np.uint64)
    if mask is not None:
        not_visited &= pack_rows(mask.reshape(1, -1))[0]
    frontier = np.zeros(P.shape[1], dtype=np.uint64)
    frontier[source >> 6] = np.uint64(1) << np.uint64(source & 63)
    d = 0
    while True:
        idx = np.flatnonzero(unpack_rows(frontier.reshape(1, -1), n)[0])
        if idx.size == 0:
            return dist
        dist[idx] = d
        not_visited &= ~frontier
        frontier = np.bitwise_or.reduce(P[idx], axis=0) & not_visited
        d += 1


def _flat_neighbors(A: np.ndarray):
    """CSR-style flat neighbour list of a symmetric adjacency matrix.

    Returns ``(flat, offsets, empty)``: ``flat[offsets[u]:offsets[u+1]]``
    are the neighbours of ``u`` (``offsets`` has the sentinel index
    ``flat.size`` appended for trailing zero-degree rows) and ``empty``
    indexes the zero-degree vertices whose reduceat rows are garbage.
    """
    rows, cols = np.nonzero(A)
    counts = np.bincount(rows, minlength=A.shape[0])
    offsets = np.zeros(A.shape[0], dtype=np.int64)
    np.cumsum(counts[:-1], out=offsets[1:])
    return cols, offsets, np.flatnonzero(counts == 0)


def bfs_distances_multi(
    A: np.ndarray, sources: Sequence[int], mask: Optional[np.ndarray] = None
) -> np.ndarray:
    """BFS distances from several sources at once (``(k, n)`` float).

    Word-parallel across the *source* dimension: 64 searches advance per
    word-op, one gather + one segmented OR per layer.  Results are
    bit-identical to :func:`adjacency.bfs_distances_multi`.
    """
    n = A.shape[0]
    src = np.asarray(sources, dtype=np.int64)
    k = src.size
    if n == 0 or k == 0:
        return np.full((k, n), np.inf)
    KW = (k + 63) // 64
    flat, offsets, empty = _flat_neighbors(np.asarray(A, dtype=bool))

    # F[v] holds bit s iff vertex v is in source s's current frontier.
    F = np.zeros((n, KW), dtype=np.uint64)
    bits = np.arange(k, dtype=np.uint64)
    alive_src = np.ones(k, dtype=bool) if mask is None else np.asarray(mask, dtype=bool)[src]
    rows = src[alive_src]
    words = (bits[alive_src] >> np.uint64(6)).astype(np.int64)
    vals = np.uint64(1) << (bits[alive_src] & np.uint64(63))
    # strictly increasing rows (the APSP/repair callers pass sorted
    # sources) are trivially distinct; otherwise check properly
    distinct = (
        bool((np.diff(rows) > 0).all()) if rows.size > 1 else True
    ) or np.unique(rows).size == rows.size
    if distinct:
        F[rows, words] = vals  # distinct source vertices: plain scatter
    else:
        np.bitwise_or.at(F, (rows, words), vals)  # duplicate sources
    dead = None if mask is None else np.flatnonzero(~np.asarray(mask, dtype=bool))
    visited = F.copy()

    # depth[v, s] counts the layers before s's search visits v; for the
    # seeds it stays 0, for never-reached pairs it is overwritten by inf.
    depth = np.zeros((n, k), dtype=np.uint16 if n < 0xFFFF else np.uint32)
    gathered = np.empty((flat.size + 1, KW), dtype=np.uint64)
    gathered[-1] = 0
    while True:
        # complementing the packed words first makes the unpack itself
        # produce the not-yet-visited indicator (pad bits are dropped)
        depth += unpack_rows(~visited, k)
        np.take(F, flat, axis=0, out=gathered[:-1])
        # the zero sentinel row keeps trailing empty-segment indices in
        # bounds; mid-array empty segments (offsets[u] == offsets[u+1])
        # come back as the next vertex's first row and are zeroed below.
        nxt = np.bitwise_or.reduceat(gathered, offsets, axis=0)
        if empty.size:
            nxt[empty] = 0
        nxt &= ~visited
        if dead is not None and dead.size:
            nxt[dead] = 0
        if not nxt.any():
            break
        F = nxt
        visited |= nxt

    # one fused pass: float64 depth where reached, inf elsewhere
    return np.where(unpack_rows(visited, k).T, depth.T, np.inf)


def all_pairs_distances(A: np.ndarray, mask: Optional[np.ndarray] = None) -> np.ndarray:
    """APSP via the word-parallel multi-source expansion.

    Bit-identical to :func:`adjacency.all_pairs_distances` /
    ``all_pairs_distances_fast``.
    """
    n = A.shape[0]
    if n == 0:
        return np.zeros((0, 0))
    return bfs_distances_multi(A, np.arange(n), mask=mask)


def is_connected_without_vertex(A: np.ndarray, u: int) -> bool:
    """``True`` iff ``A - u`` is connected — packed reachability only.

    No distance bookkeeping at all: the frontier and visited sets are
    word bitsets, the expansion is an OR-reduction of packed adjacency
    rows, and the verdict is one ``bitwise_count`` at the end.
    """
    n = A.shape[0]
    if n <= 2:
        return True
    P = pack_rows(A)
    W = P.shape[1]
    # not_visited starts as "all alive vertices": pad bits and u cleared
    not_visited = ~np.zeros(W, dtype=np.uint64)
    if n & 63:
        not_visited[-1] = (np.uint64(1) << np.uint64(n & 63)) - np.uint64(1)
    not_visited[u >> 6] &= ~(np.uint64(1) << np.uint64(u & 63))
    start = 0 if u != 0 else 1
    frontier = np.zeros(W, dtype=np.uint64)
    frontier[start >> 6] = np.uint64(1) << np.uint64(start & 63)
    not_visited &= ~frontier
    while True:
        idx = np.flatnonzero(unpack_rows(frontier.reshape(1, -1), n)[0])
        if idx.size == 0:
            break
        frontier = np.bitwise_or.reduce(P[idx], axis=0) & not_visited
        not_visited &= ~frontier
    return not int(np.bitwise_count(not_visited).sum())
