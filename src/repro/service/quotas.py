"""Admission control for the job service.

Three tiers of rejection, each with a named JSON error body:

- global saturation (queued jobs at ``max_queued``) → **503** with a
  ``Retry-After`` header — the fleet is busy, come back later;
- a single client token holding ``max_jobs_per_client`` active jobs →
  **429** with ``Retry-After`` — fair-share throttling;
- a spec that is simply too big (``n``, ``trials``, ``max_states``
  above the per-job caps) → **422** — retrying will not help, shrink
  the spec.

The policy is pure data + one :meth:`QuotaPolicy.admit` decision so the
tests and the load bench can exercise it without a socket.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping, Optional, Tuple

#: (http status, error code, detail, retry_after or None)
Rejection = Tuple[int, str, str, Optional[int]]


@dataclass(frozen=True)
class QuotaPolicy:
    """Admission limits for one service instance."""

    max_queued: int = 64
    max_jobs_per_client: int = 8
    max_n: int = 200
    max_trials: int = 500
    max_states: int = 200_000
    retry_after: int = 5

    def check_spec_limits(
        self, *, n_values: Tuple[int, ...], trials: int, max_states: int
    ) -> Optional[Rejection]:
        """Per-spec size caps — 422, retrying is pointless."""
        biggest = max(n_values)
        if biggest > self.max_n:
            return (422, "limit-exceeded",
                    f"n={biggest} exceeds the per-job cap of {self.max_n}",
                    None)
        if trials > self.max_trials:
            return (422, "limit-exceeded",
                    f"trials={trials} exceeds the per-job cap of "
                    f"{self.max_trials}", None)
        if max_states > self.max_states:
            return (422, "limit-exceeded",
                    f"max_states={max_states} exceeds the per-job cap of "
                    f"{self.max_states}", None)
        return None

    def admit(
        self,
        *,
        queued: int,
        per_client: Mapping[str, int],
        client: str,
    ) -> Optional[Rejection]:
        """Admission decision for one submission; ``None`` means accept.

        ``queued`` counts jobs waiting for a worker; ``per_client``
        counts *active* (queued + running) jobs per client token.
        """
        if queued >= self.max_queued:
            return (503, "saturated",
                    f"{queued} jobs queued (cap {self.max_queued}); "
                    "retry after the backlog drains", self.retry_after)
        if per_client.get(client, 0) >= self.max_jobs_per_client:
            return (429, "client-quota",
                    f"client {client!r} already has "
                    f"{per_client.get(client, 0)} active jobs "
                    f"(cap {self.max_jobs_per_client})", self.retry_after)
        return None
