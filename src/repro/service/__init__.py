"""repro.service — simulation-as-a-service over the registry + stores.

A long-running asyncio job server, stdlib-only (no FastAPI/starlette —
the same pure-python-fallback ethos as ``experiments/columnar.py``):

- :mod:`.protocol` — minimal HTTP/1.1 request handling plus an RFC 6455
  websocket implementation (handshake, frame codec, ping/pong, close)
  on asyncio streams.  The frame codec is sans-io so the same code
  serves the async server, the sync client, and the unit tests.
- :mod:`.jobs` — the durable job table.  Each job owns a directory with
  an atomically-replaced ``job.json`` plus a per-job
  :class:`~repro.experiments.campaign.CampaignStore` /
  :class:`~repro.statespace.store.ExplorationStore`, so a killed server
  resumes every in-flight job on restart with zero recomputation of
  completed units.
- :mod:`.quotas` — admission control: max queued jobs (503 +
  Retry-After), max jobs per client token (429), per-spec size caps
  (422 with named error codes).
- :mod:`.api` — the REST surface: ``POST /jobs``, ``GET /jobs/{id}``,
  ``GET /jobs/{id}/result``, ``DELETE /jobs/{id}``, ``GET /scenarios``,
  ``GET /scenarios/schema``.
- :mod:`.stream` — ``GET /jobs/{id}/stream`` websocket: replays stored
  records then tails live ones.  Records are sent as the *exact* bytes
  the store holds (one serialization, no drift); a slow client drops to
  summary-only mode instead of blocking the worker.
- :mod:`.server` — the asyncio server, SIGTERM graceful drain (PR 7
  semantics), and :class:`ServiceThread` for in-process embedding.
- :mod:`.client` — a blocking stdlib client (http.client + a raw-socket
  websocket) used by the examples, the smoke test, and the load bench.
"""

from .client import ServiceClient
from .jobs import JOB_KINDS, JOB_STATES, Job, JobManager, JobRejected
from .protocol import (
    ProtocolError,
    WebSocket,
    decode_frame,
    encode_frame,
    websocket_accept_key,
)
from .quotas import QuotaPolicy
from .server import ReproService, ServiceConfig, ServiceThread, serve

__all__ = [
    "JOB_KINDS",
    "JOB_STATES",
    "Job",
    "JobManager",
    "JobRejected",
    "ProtocolError",
    "QuotaPolicy",
    "ReproService",
    "ServiceClient",
    "ServiceConfig",
    "ServiceThread",
    "WebSocket",
    "decode_frame",
    "encode_frame",
    "serve",
    "websocket_accept_key",
]
