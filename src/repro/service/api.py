"""The REST + websocket surface of the job service.

Routes::

    GET    /                      service banner + route list
    GET    /scenarios             registry catalog (components + params)
    GET    /scenarios/schema      JSON Schema for ScenarioSpec payloads
    GET    /jobs                  job table (id, kind, state per job)
    POST   /jobs                  submit (body = job request JSON)
    GET    /jobs/{id}             status + progress counters
    GET    /jobs/{id}/result      final result payload (done jobs)
    DELETE /jobs/{id}             cancel (idempotent)
    GET    /jobs/{id}/stream      websocket: replay + live tail

Every error body is ``{"error": <named-code>, "detail": <text>}``; the
quota tiers add ``Retry-After`` where retrying can help.  Clients
identify themselves with an ``X-Client-Token`` header (absent tokens
share the ``"anonymous"`` bucket).
"""

from __future__ import annotations

import json
from typing import Optional, Tuple

from ..obs import metrics as obs_metrics
from .jobs import JobManager, JobRejected
from .protocol import (
    HTTPRequest,
    WebSocket,
    error_response,
    handshake_response,
    json_response,
    response_bytes,
)
from .quotas import QuotaPolicy
from .stream import stream_job

CLIENT_HEADER = "x-client-token"
ANONYMOUS = "anonymous"

ROUTES = (
    "GET /", "GET /metrics", "GET /scenarios", "GET /scenarios/schema",
    "GET /jobs", "POST /jobs", "GET /jobs/{id}", "GET /jobs/{id}/result",
    "DELETE /jobs/{id}", "GET /jobs/{id}/stream",
)

_QUOTA_REJECTIONS = obs_metrics.counter(
    "repro_quota_rejections_total",
    "Submissions bounced by the quota policy",
    ("code",))


class ServiceApi:
    """Dispatches parsed requests against the manager + quota policy."""

    def __init__(self, manager: JobManager, quota: QuotaPolicy) -> None:
        self.manager = manager
        self.quota = quota
        #: set during SIGTERM drain — submissions bounce with 503
        self.draining = False

    # -- plain HTTP --------------------------------------------------------
    def dispatch(self, request: HTTPRequest) -> bytes:
        """Handle one non-websocket request; returns the raw response."""
        parts = [p for p in request.path.split("/") if p]
        try:
            if not parts:
                return self._banner(request)
            if parts[0] == "metrics" and len(parts) == 1:
                return self._metrics(request)
            if parts[0] == "scenarios":
                return self._scenarios(request, parts)
            if parts[0] == "jobs":
                return self._jobs(request, parts)
            return error_response(404, "not-found",
                                  f"no route for {request.path!r}")
        except JobRejected as exc:
            _QUOTA_REJECTIONS.labels(code=exc.code).inc()
            headers = {}
            if exc.retry_after is not None:
                headers["Retry-After"] = str(exc.retry_after)
            return error_response(exc.status, exc.code, exc.detail,
                                  headers=headers)

    def _banner(self, request: HTTPRequest) -> bytes:
        if request.method != "GET":
            return error_response(405, "method-not-allowed", request.method)
        return json_response(200, {"service": "repro", "routes": ROUTES})

    def _metrics(self, request: HTTPRequest) -> bytes:
        """Prometheus exposition: this process's meter folded with every
        job worker's delta snapshot (``jobs/*/metrics.json``), so kernel
        and per-job families show up next to the service's own."""
        if request.method != "GET":
            return error_response(405, "method-not-allowed", request.method)
        snapshot = obs_metrics.DEFAULT.snapshot()
        for path in sorted(self.manager.jobs_dir.glob("*/metrics.json")):
            try:
                snapshot = obs_metrics.merge_snapshots(
                    snapshot, obs_metrics.read_snapshot_file(path))
            except (OSError, ValueError):
                continue  # torn or foreign file: exposition must not 500
        body = obs_metrics.encode_prometheus(snapshot).encode("utf-8")
        return response_bytes(200, body,
                              content_type=obs_metrics.CONTENT_TYPE)

    def _scenarios(self, request: HTTPRequest, parts) -> bytes:
        from ..registry import REGISTRY

        if request.method != "GET":
            return error_response(405, "method-not-allowed", request.method)
        if len(parts) == 1:
            return json_response(200, {"categories": REGISTRY.describe()})
        if parts[1] == "schema" and len(parts) == 2:
            from ..registry.schema import scenario_json_schema

            return json_response(200, scenario_json_schema())
        return error_response(404, "not-found",
                              f"no route for {request.path!r}")

    def _jobs(self, request: HTTPRequest, parts) -> bytes:
        manager = self.manager
        if len(parts) == 1:
            if request.method == "POST":
                return self._submit(request)
            if request.method == "GET":
                jobs = sorted(manager.jobs.values(), key=lambda j: j.seq)
                return json_response(200, {"jobs": [
                    {"id": j.id, "kind": j.kind, "state": j.state}
                    for j in jobs]})
            return error_response(405, "method-not-allowed", request.method)

        job = manager.get(parts[1])
        if job is None:
            return error_response(404, "no-such-job", parts[1])
        if len(parts) == 2:
            if request.method == "GET":
                return json_response(200, job.view(manager.progress(job)))
            if request.method == "DELETE":
                return json_response(200, manager.cancel(job.id).view())
            return error_response(405, "method-not-allowed", request.method)
        if len(parts) == 3 and parts[2] == "result":
            if request.method != "GET":
                return error_response(405, "method-not-allowed", request.method)
            return self._result(job)
        if len(parts) == 3 and parts[2] == "stream":
            # reached over plain HTTP: the route exists, but only as ws
            return error_response(426, "upgrade-required",
                                  "this route speaks websocket; send an "
                                  "Upgrade: websocket handshake")
        return error_response(404, "not-found", f"no route for {request.path!r}")

    def _submit(self, request: HTTPRequest) -> bytes:
        if self.draining:
            return error_response(
                503, "draining", "server is shutting down",
                headers={"Retry-After": str(self.quota.retry_after)})
        try:
            payload = json.loads(request.body.decode("utf-8"))
        except (UnicodeDecodeError, json.JSONDecodeError) as exc:
            return error_response(400, "bad-json", str(exc))
        client = request.header(CLIENT_HEADER, ANONYMOUS) or ANONYMOUS
        job = self.manager.submit(payload, client, self.quota)
        return json_response(201, job.view(self.manager.progress(job)))

    def _result(self, job) -> bytes:
        if job.state == "failed":
            detail = (job.error or {}).get("detail", "job failed")
            return error_response(409, "job-failed", detail)
        if job.state != "done":
            return error_response(409, "not-done",
                                  f"job is {job.state}; result exists only "
                                  "for done jobs")
        try:
            text = self.manager.result_path(job.id).read_text()
        except OSError:
            return error_response(500, "result-missing",
                                  "job is done but its result file is gone")
        return json_response(200, {"id": job.id, "result": json.loads(text)})

    # -- websocket ---------------------------------------------------------
    def stream_target(self, request: HTTPRequest) -> Optional[Tuple[str, bytes]]:
        """For an upgrade request: ``(job_id, None)`` when routable, else
        ``(None, error-bytes)`` to send and hang up."""
        parts = [p for p in request.path.split("/") if p]
        if len(parts) != 3 or parts[0] != "jobs" or parts[2] != "stream":
            return None, error_response(404, "not-found",
                                        f"no websocket at {request.path!r}")
        if not request.header("sec-websocket-key"):
            return None, error_response(400, "bad-handshake",
                                        "missing Sec-WebSocket-Key")
        if self.manager.get(parts[1]) is None:
            return None, error_response(404, "no-such-job", parts[1])
        return parts[1], b""

    async def handle_stream(self, request: HTTPRequest, reader, writer) -> None:
        """Complete the handshake and serve the stream until it ends."""
        job_id, err = self.stream_target(request)
        if job_id is None:
            writer.write(err)
            await writer.drain()
            return
        writer.write(handshake_response(request.header("sec-websocket-key")))
        await writer.drain()
        ws = WebSocket(reader, writer)
        await stream_job(self.manager, self.manager.get(job_id), ws)
