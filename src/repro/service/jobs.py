"""The durable job table: validation, persistence, workers, recovery.

Every job owns a directory under ``<state_dir>/jobs/<id>/``::

    job.json     atomically-replaced control record (state machine)
    store/       per-job CampaignStore / ExplorationStore (kill-safe)
    result.json  final payload, written once by the worker
    error.json   named failure, written by the worker on error

``job.json`` is the *only* file the server mutates; the worker process
writes only the store and the result/error files.  That split means a
SIGKILLed server loses nothing: on restart :meth:`JobManager.recover`
re-reads every ``job.json``, demotes orphaned ``running`` jobs back to
``queued``, and the re-spawned worker resumes from the store —
completed units are skipped by the store's ``completed_index`` exactly
as ``repro campaign --resume`` does, so nothing is recomputed.

Workers run the job in *slices* (``max_new_trials`` /
``max_expansions``), mirroring the fabric's drain semantics from PR 7:
the first SIGTERM lets the current slice finish and exits with
:data:`EXIT_RELEASED` (job goes back to ``queued``); a second SIGTERM
exits immediately — the stores are kill-safe either way.
"""

from __future__ import annotations

import asyncio
import json
import multiprocessing
import os
import secrets
import signal
import sys
import time
import traceback
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Mapping, Optional, Tuple

from ..obs import metrics as obs_metrics
from ..obs import tracing as obs_tracing
from ..registry.scenario import ScenarioSpec
from ..statespace.expand import AGENT_FILTERS, MOVESETS
from ..testing.faults import resolve_fs
from .quotas import QuotaPolicy

__all__ = [
    "EXIT_DONE",
    "EXIT_FAILED",
    "EXIT_RELEASED",
    "JOB_KINDS",
    "JOB_STATES",
    "Job",
    "JobManager",
    "JobRejected",
    "JobRequest",
    "TERMINAL_STATES",
    "job_worker_main",
    "parse_job_request",
]

JOB_KINDS = ("trial", "campaign", "explore")
JOB_STATES = ("queued", "running", "done", "failed", "cancelled")
TERMINAL_STATES = frozenset({"done", "failed", "cancelled"})

_JOB_EVENTS = obs_metrics.counter(
    "repro_jobs_events_total",
    "Job lifecycle events seen by the manager",
    ("event",))
_JOB_SUBMITTED = _JOB_EVENTS.labels(event="submitted")
_JOB_STARTED = _JOB_EVENTS.labels(event="started")
_JOB_DONE = _JOB_EVENTS.labels(event="done")
_JOB_FAILED = _JOB_EVENTS.labels(event="failed")
_JOB_CANCELLED = _JOB_EVENTS.labels(event="cancelled")
_JOB_REQUEUED = _JOB_EVENTS.labels(event="requeued")
_JOBS_RUNNING = obs_metrics.gauge(
    "repro_jobs_running",
    "Worker processes currently executing jobs")

#: worker exit codes — the manager's reaper maps them to job states
EXIT_DONE = 0
EXIT_FAILED = 1
#: graceful drain: the job is intact and resumable, put it back in queue
EXIT_RELEASED = 3

#: slice sizes for the worker's drain-aware loops
TRIAL_SLICE = 8
EXPLORE_SLICE = 512

DEFAULT_MAX_STATES = 200_000


class JobRejected(ValueError):
    """A submission the service refuses, with its HTTP rendering."""

    def __init__(self, status: int, code: str, detail: str,
                 retry_after: Optional[int] = None) -> None:
        super().__init__(f"{code}: {detail}")
        self.status = status
        self.code = code
        self.detail = detail
        self.retry_after = retry_after


def _bad(code: str, detail: str, status: int = 400) -> JobRejected:
    return JobRejected(status, code, detail)


def _require_int(payload: Mapping, key: str, default: Optional[int],
                 minimum: int = 0) -> int:
    value = payload.get(key, default)
    if isinstance(value, bool) or not isinstance(value, int):
        raise _bad("bad-int", f"{key!r} must be an integer, got {value!r}")
    if value < minimum:
        raise _bad("bad-int", f"{key!r} must be >= {minimum}, got {value}")
    return value


@dataclass(frozen=True)
class JobRequest:
    """A validated submission, canonical enough to persist and re-run."""

    kind: str
    specs: Tuple[ScenarioSpec, ...]
    n_values: Tuple[int, ...]
    trials: int = 1
    seed: int = 0
    moves: str = "best"
    agent_filter: str = "all"
    max_states: int = DEFAULT_MAX_STATES

    def payload(self) -> dict:
        """The JSON form stored in ``job.json`` (round-trips via
        :func:`parse_job_request`)."""
        out = {
            "kind": self.kind,
            "specs": [spec.to_json() for spec in self.specs],
            "n_values": list(self.n_values),
            "trials": self.trials,
            "seed": self.seed,
        }
        if self.kind == "explore":
            out.update(moves=self.moves, agent_filter=self.agent_filter,
                       max_states=self.max_states)
        return out

    @property
    def total_units(self) -> int:
        """Planned work units (trials for campaigns, 0 = open for explore)."""
        if self.kind == "explore":
            return 0
        return len(self.specs) * len(self.n_values) * self.trials


def parse_job_request(payload: object,
                      quota: Optional[QuotaPolicy] = None) -> JobRequest:
    """Validate a ``POST /jobs`` body into a :class:`JobRequest`.

    Raises :class:`JobRejected` with a named code: ``bad-payload`` /
    ``bad-kind`` / ``bad-spec`` / ``bad-int`` / ``bad-moves`` /
    ``bad-agent-filter`` (400 or 422), or ``limit-exceeded`` (422) when
    a ``quota`` is given and the spec busts a per-job cap.
    """
    if not isinstance(payload, Mapping):
        raise _bad("bad-payload", "request body must be a JSON object")
    kind = payload.get("kind", "trial")
    if kind not in JOB_KINDS:
        raise _bad("bad-kind", f"kind must be one of {JOB_KINDS}, got {kind!r}")

    raw_specs = payload.get("specs")
    if raw_specs is None:
        single = payload.get("spec")
        if single is None:
            raise _bad("bad-payload", "pass 'spec' (object) or 'specs' (list)")
        raw_specs = [single]
    if not isinstance(raw_specs, list) or not raw_specs:
        raise _bad("bad-payload", "'specs' must be a non-empty list")
    if kind != "campaign" and len(raw_specs) != 1:
        raise _bad("bad-payload", f"{kind!r} jobs take exactly one spec")
    specs = []
    for entry in raw_specs:
        if not isinstance(entry, Mapping):
            raise _bad("bad-spec", f"spec must be an object, got {entry!r}", 422)
        try:
            specs.append(ScenarioSpec.from_json(entry))
        except ValueError as exc:
            raise _bad("bad-spec", str(exc), 422) from exc

    raw_ns = payload.get("n_values")
    if raw_ns is None:
        raw_ns = [_require_int(payload, "n", None, minimum=2)]
    if not isinstance(raw_ns, list) or not raw_ns:
        raise _bad("bad-int", "'n_values' must be a non-empty list")
    n_values = tuple(
        _require_int({"n": v}, "n", None, minimum=2) for v in raw_ns)
    if kind in ("trial", "explore") and len(n_values) != 1:
        raise _bad("bad-int", f"{kind!r} jobs take exactly one n")

    trials = _require_int(payload, "trials", 1, minimum=1)
    seed = _require_int(payload, "seed", 0)

    moves = payload.get("moves", "best")
    if moves not in MOVESETS:
        raise _bad("bad-moves", f"moves must be one of {MOVESETS}, got {moves!r}")
    agent_filter = payload.get("agent_filter", "all")
    if agent_filter not in AGENT_FILTERS:
        raise _bad("bad-agent-filter",
                   f"agent_filter must be one of {AGENT_FILTERS}, "
                   f"got {agent_filter!r}")
    max_states = _require_int(payload, "max_states", DEFAULT_MAX_STATES,
                              minimum=1)

    request = JobRequest(kind=kind, specs=tuple(specs), n_values=n_values,
                         trials=trials, seed=seed, moves=moves,
                         agent_filter=agent_filter, max_states=max_states)
    if quota is not None:
        rejection = quota.check_spec_limits(
            n_values=n_values, trials=trials, max_states=max_states)
        if rejection is not None:
            status, code, detail, retry = rejection
            raise JobRejected(status, code, detail, retry)
    return request


# --------------------------------------------------------------------------
# The job record
# --------------------------------------------------------------------------


@dataclass
class Job:
    """One job's control record — the in-memory mirror of ``job.json``."""

    id: str
    kind: str
    state: str
    client: str
    seq: int
    request: dict
    error: Optional[dict] = None
    #: times this job went running -> queued (crash or drain); streams
    #: watch it to tell a resumed job apart from a rescheduling blip
    requeues: int = 0

    def view(self, progress: Optional[dict] = None) -> dict:
        """The JSON the API returns for this job."""
        out = {"id": self.id, "kind": self.kind, "state": self.state,
               "client": self.client, "request": self.request,
               "error": self.error, "requeues": self.requeues}
        if progress is not None:
            out["progress"] = progress
        return out

    def to_json(self) -> dict:
        return {"id": self.id, "kind": self.kind, "state": self.state,
                "client": self.client, "seq": self.seq,
                "request": self.request, "error": self.error,
                "requeues": self.requeues}

    @classmethod
    def from_json(cls, payload: dict) -> "Job":
        return cls(id=payload["id"], kind=payload["kind"],
                   state=payload["state"], client=payload.get("client", ""),
                   seq=int(payload.get("seq", 0)),
                   request=payload.get("request", {}),
                   error=payload.get("error"),
                   requeues=int(payload.get("requeues", 0)))


# --------------------------------------------------------------------------
# The worker process
# --------------------------------------------------------------------------

_drain_asked = 0


def _worker_sigterm(signum, frame) -> None:
    """First SIGTERM: finish the current slice.  Second: exit now —
    the stores are kill-safe and the job stays resumable."""
    global _drain_asked
    _drain_asked += 1
    if _drain_asked > 1:
        os._exit(EXIT_RELEASED)


def _write_json(path: Path, payload: dict) -> None:
    tmp = path.with_suffix(".tmp")
    tmp.write_text(json.dumps(payload, sort_keys=True) + "\n")
    os.replace(tmp, path)


def _grid_for(request: JobRequest, job_id: str):
    from ..experiments.config import FigureSpec

    return FigureSpec(
        figure=f"job-{job_id}", title=f"service job {job_id}",
        configs=tuple(request.specs), n_values=request.n_values,
        trials=request.trials)


def _run_campaign_job(request: JobRequest, job_id: str, store_dir: Path) -> dict:
    """Drain the campaign in slices; ``None`` return means released."""
    from ..experiments.campaign import aggregate_payload, run_campaign

    grid = _grid_for(request, job_id)
    while True:
        run = run_campaign(grid, store_dir, seed=request.seed, n_jobs=1,
                           max_new_trials=TRIAL_SLICE, aggregate=False)
        if run.remaining <= 0:
            break
        if _drain_asked:
            return None
    final = run_campaign(grid, store_dir, seed=request.seed, n_jobs=1,
                         max_new_trials=0, aggregate=True)
    return {"kind": request.kind, "total": final.total,
            "aggregate": aggregate_payload(final.result)}


def _run_explore_job(request: JobRequest, store_dir: Path) -> dict:
    from ..registry import REGISTRY
    from ..statespace.explore import explore
    from ..statespace.store import ExplorationStore, write_report

    spec = request.specs[0]
    n = request.n_values[0]
    game = REGISTRY.build("game", spec.game, spec.params_for("game"), n=n)
    store = ExplorationStore(store_dir)
    while True:
        report = explore(game, n=n, moves=request.moves,
                         agent_filter=request.agent_filter,
                         max_states=request.max_states, store=store,
                         max_expansions=EXPLORE_SLICE, game_name=spec.game)
        if report.complete:
            write_report(store, report)
            return {"kind": "explore", **report.to_json()}
        if report.truncated:
            raise RuntimeError(
                f"exploration truncated at max_states={request.max_states}")
        if _drain_asked:
            return None


def job_worker_main(job_dir: str) -> int:
    """Entry point of one job worker process."""
    global _drain_asked
    _drain_asked = 0
    signal.signal(signal.SIGTERM, _worker_sigterm)
    root = Path(job_dir)
    # Forked workers inherit the parent's meter values; persist only the
    # delta accrued in this process so fleet merges don't double-count.
    entry_snapshot = obs_metrics.DEFAULT.snapshot()
    try:
        job = Job.from_json(json.loads((root / "job.json").read_text()))
        request = parse_job_request(job.request)
        store_dir = root / "store"
        with obs_tracing.span("service.job", job=job.id, kind=request.kind):
            if request.kind == "explore":
                result = _run_explore_job(request, store_dir)
            else:
                result = _run_campaign_job(request, job.id, store_dir)
        if result is None:
            return EXIT_RELEASED
        _write_json(root / "result.json", result)
        return EXIT_DONE
    except BaseException as exc:  # noqa: BLE001 — worker must report, not die
        if isinstance(exc, (KeyboardInterrupt, SystemExit)):
            return EXIT_RELEASED
        try:
            _write_json(root / "error.json", {
                "error": "worker-error",
                "detail": "".join(
                    traceback.format_exception_only(type(exc), exc)).strip(),
            })
        except OSError:
            pass
        return EXIT_FAILED
    finally:
        try:
            obs_metrics.write_snapshot_file(
                root / "metrics.json",
                snapshot=obs_metrics.diff_snapshots(
                    obs_metrics.DEFAULT.snapshot(), entry_snapshot))
        except OSError:
            pass  # telemetry must never fail the worker


def _worker_entry(job_dir: str) -> None:
    sys.exit(job_worker_main(job_dir))


# --------------------------------------------------------------------------
# The manager
# --------------------------------------------------------------------------


@dataclass
class JobManager:
    """Owns the job table and the worker pool.

    Runs inside the service's event loop (single-threaded — no locks);
    workers are separate processes so cancel/drain can signal them and
    a crash cannot corrupt the server.  ``workers=0`` disables
    execution entirely (admission-only mode, used by the load bench).
    """

    state_dir: Path
    workers: int = 2
    poll_interval: float = 0.05
    kill_grace: float = 5.0
    fs: object = None

    def __post_init__(self) -> None:
        self.state_dir = Path(self.state_dir)
        self.fs = resolve_fs(self.fs)
        self.jobs_dir = self.state_dir / "jobs"
        self.jobs: Dict[str, Job] = {}
        self.procs: Dict[str, multiprocessing.Process] = {}
        self._seq = 0
        self._mp = multiprocessing.get_context()

    # -- persistence -------------------------------------------------------
    def job_dir(self, job_id: str) -> Path:
        return self.jobs_dir / job_id

    def store_dir(self, job_id: str) -> Path:
        return self.job_dir(job_id) / "store"

    def _persist(self, job: Job) -> None:
        path = self.job_dir(job.id) / "job.json"
        tmp = path.with_suffix(".tmp")
        self.fs.write_text(tmp, json.dumps(job.to_json(), sort_keys=True) + "\n")
        self.fs.replace(tmp, path)

    def recover(self) -> dict:
        """Rebuild the job table from disk; orphaned ``running`` jobs
        (their worker died with the old server) go back to ``queued``."""
        self.jobs_dir.mkdir(parents=True, exist_ok=True)
        requeued = 0
        for path in sorted(self.jobs_dir.glob("*/job.json")):
            try:
                job = Job.from_json(json.loads(path.read_text()))
            except (OSError, ValueError, KeyError):
                continue  # torn control record: job dir is inert, skip it
            if job.state == "running":
                job.state = "queued"
                job.requeues += 1
                self._persist(job)
                requeued += 1
            self.jobs[job.id] = job
            self._seq = max(self._seq, job.seq + 1)
        if requeued:
            _JOB_REQUEUED.inc(requeued)
        return {"jobs": len(self.jobs), "requeued": requeued}

    # -- queries -----------------------------------------------------------
    def get(self, job_id: str) -> Optional[Job]:
        return self.jobs.get(job_id)

    def active_counts(self) -> Tuple[int, Dict[str, int]]:
        """(queued jobs, active jobs per client) — the quota inputs."""
        queued = 0
        per_client: Dict[str, int] = {}
        for job in self.jobs.values():
            if job.state == "queued":
                queued += 1
            if job.state in ("queued", "running"):
                per_client[job.client] = per_client.get(job.client, 0) + 1
        return queued, per_client

    def progress(self, job: Job) -> dict:
        """Cheap progress counters read straight off the job's store."""
        if job.kind == "explore":
            from ..statespace.store import ExplorationStore

            status = ExplorationStore(self.store_dir(job.id)).status()
            return {"expanded": status["expanded"],
                    "discovered": status["discovered"],
                    "pending": status["pending"]}
        from ..experiments.campaign import CampaignStore

        store = CampaignStore(self.store_dir(job.id))
        trials = int(job.request.get("trials", 1))
        total = (len(job.request.get("specs", ())) *
                 len(job.request.get("n_values", ())) * trials)
        done = sum(
            len({t for t in idxs if 0 <= t < trials})
            for idxs in store.completed_index(store.iter_all_records()).values()
        )
        return {"done": done, "total": total}

    def result_path(self, job_id: str) -> Path:
        return self.job_dir(job_id) / "result.json"

    # -- submission / cancel ----------------------------------------------
    def submit(self, payload: object, client: str,
               quota: Optional[QuotaPolicy] = None) -> Job:
        """Validate, apply quotas, persist, and enqueue one job."""
        request = parse_job_request(payload, quota)
        if quota is not None:
            queued, per_client = self.active_counts()
            rejection = quota.admit(queued=queued, per_client=per_client,
                                    client=client)
            if rejection is not None:
                status, code, detail, retry = rejection
                raise JobRejected(status, code, detail, retry)
        seq = self._seq
        self._seq += 1
        job_id = f"job-{seq:06d}-{secrets.token_hex(3)}"
        job = Job(id=job_id, kind=request.kind, state="queued", client=client,
                  seq=seq, request=request.payload())
        self.job_dir(job_id).mkdir(parents=True, exist_ok=True)
        self._persist(job)
        self.jobs[job_id] = job
        _JOB_SUBMITTED.inc()
        return job

    def cancel(self, job_id: str) -> Job:
        """Cancel a job; terminal jobs are returned unchanged."""
        job = self.jobs[job_id]
        if job.state in TERMINAL_STATES:
            return job
        job.state = "cancelled"
        self._persist(job)
        _JOB_CANCELLED.inc()
        proc = self.procs.get(job_id)
        if proc is not None and proc.is_alive():
            proc.terminate()
        return job

    # -- scheduling --------------------------------------------------------
    def _spawn_ready(self) -> None:
        free = self.workers - len(self.procs)
        if free <= 0:
            return
        queued = sorted(
            (j for j in self.jobs.values() if j.state == "queued"),
            key=lambda j: j.seq)
        for job in queued[:free]:
            job.state = "running"
            self._persist(job)
            proc = self._mp.Process(
                target=_worker_entry, args=(str(self.job_dir(job.id)),),
                daemon=True)
            proc.start()
            self.procs[job.id] = proc
            _JOB_STARTED.inc()
        _JOBS_RUNNING.set(len(self.procs))

    def _reap(self) -> None:
        for job_id in list(self.procs):
            proc = self.procs[job_id]
            if proc.is_alive():
                continue
            del self.procs[job_id]
            proc.join()
            job = self.jobs[job_id]
            if job.state == "cancelled":
                continue
            code = proc.exitcode
            if code == EXIT_DONE and self.result_path(job_id).exists():
                job.state = "done"
                _JOB_DONE.inc()
            elif code == EXIT_RELEASED or code in (-signal.SIGTERM,
                                                   -signal.SIGKILL):
                job.state = "queued"  # drained or killed: intact, re-runnable
                job.requeues += 1
                _JOB_REQUEUED.inc()
            else:
                job.state = "failed"
                job.error = self._read_error(job_id, code)
                _JOB_FAILED.inc()
            self._persist(job)
        _JOBS_RUNNING.set(len(self.procs))

    def _read_error(self, job_id: str, code: Optional[int]) -> dict:
        path = self.job_dir(job_id) / "error.json"
        try:
            return json.loads(path.read_text())
        except (OSError, ValueError):
            return {"error": "worker-exit",
                    "detail": f"worker exited with code {code}"}

    async def run(self, stop: asyncio.Event) -> None:
        """The scheduler loop: spawn ready jobs, reap finished workers."""
        while not stop.is_set():
            self._reap()
            self._spawn_ready()
            try:
                await asyncio.wait_for(stop.wait(), timeout=self.poll_interval)
            except asyncio.TimeoutError:
                pass

    async def drain(self) -> None:
        """PR 7 drain semantics: SIGTERM each worker (finish the slice),
        escalate after ``kill_grace``, requeue whatever released."""
        for proc in self.procs.values():
            if proc.is_alive():
                proc.terminate()
        deadline = time.monotonic() + self.kill_grace
        while self.procs and time.monotonic() < deadline:
            self._reap()
            if not self.procs:
                break
            await asyncio.sleep(self.poll_interval)
        for proc in self.procs.values():  # stragglers: second TERM, then KILL
            if proc.is_alive():
                proc.terminate()
                proc.join(timeout=0.5)
            if proc.is_alive():
                proc.kill()
                proc.join(timeout=2.0)
        self._reap()
