"""HTTP/1.1 + RFC 6455 websocket primitives on asyncio streams.

Stdlib-only.  The websocket frame codec (:func:`encode_frame` /
:func:`decode_frame`) is sans-io — pure bytes in, frames out — so the
asyncio server, the blocking client, the codec benchmark, and the unit
tests all exercise the same code.

Scope is deliberately minimal: one request per connection
(``Connection: close``) except for websocket upgrades, Content-Length
bodies only (no chunked transfer), and only the frame features the
service needs — text/binary/continuation frames, masking, ping/pong,
and close codes.
"""

from __future__ import annotations

import asyncio
import base64
import hashlib
import json
import os
import struct
from dataclasses import dataclass, field
from typing import Dict, Mapping, Optional, Tuple

__all__ = [
    "CLOSE_GOING_AWAY",
    "CLOSE_INTERNAL",
    "CLOSE_NORMAL",
    "CLOSE_POLICY",
    "CLOSE_PROTOCOL_ERROR",
    "CLOSE_TOO_BIG",
    "Frame",
    "HTTPRequest",
    "OP_BINARY",
    "OP_CLOSE",
    "OP_CONT",
    "OP_PING",
    "OP_PONG",
    "OP_TEXT",
    "PayloadTooLarge",
    "ProtocolError",
    "WebSocket",
    "apply_mask",
    "decode_close",
    "decode_frame",
    "encode_close",
    "encode_frame",
    "error_response",
    "handshake_response",
    "json_response",
    "read_request",
    "response_bytes",
    "websocket_accept_key",
]
from urllib.parse import parse_qsl, unquote, urlsplit

# --------------------------------------------------------------------------
# HTTP/1.1
# --------------------------------------------------------------------------

MAX_HEADER_BYTES = 32 * 1024
MAX_HEADER_COUNT = 100

REASONS = {
    200: "OK",
    201: "Created",
    204: "No Content",
    400: "Bad Request",
    404: "Not Found",
    405: "Method Not Allowed",
    409: "Conflict",
    413: "Payload Too Large",
    422: "Unprocessable Entity",
    426: "Upgrade Required",
    429: "Too Many Requests",
    500: "Internal Server Error",
    503: "Service Unavailable",
}


class ProtocolError(ValueError):
    """A malformed HTTP request or websocket frame."""


class PayloadTooLarge(ProtocolError):
    """Request body exceeds the configured limit (maps to HTTP 413)."""


@dataclass
class HTTPRequest:
    """A parsed request: method, split target, lowercased headers, body."""

    method: str
    target: str
    path: str
    query: Dict[str, str]
    headers: Dict[str, str]
    body: bytes = b""

    def header(self, name: str, default: str = "") -> str:
        return self.headers.get(name.lower(), default)

    @property
    def wants_websocket(self) -> bool:
        return (
            "websocket" in self.header("upgrade").lower()
            and "upgrade" in self.header("connection").lower()
        )


async def read_request(
    reader: asyncio.StreamReader, *, max_body: int = 1 << 20
) -> Optional[HTTPRequest]:
    """Read one HTTP/1.1 request; ``None`` on a cleanly closed socket.

    Raises :class:`ProtocolError` on malformed input and
    :class:`PayloadTooLarge` when Content-Length exceeds ``max_body``
    (the caller answers 400 / 413 respectively).
    """
    try:
        head = await reader.readuntil(b"\r\n\r\n")
    except asyncio.IncompleteReadError as exc:
        if not exc.partial:
            return None
        raise ProtocolError("truncated request head") from exc
    except asyncio.LimitOverrunError as exc:
        raise ProtocolError("request head too large") from exc
    if len(head) > MAX_HEADER_BYTES:
        raise ProtocolError("request head too large")

    lines = head.decode("latin-1").split("\r\n")
    parts = lines[0].split(" ")
    if len(parts) != 3 or not parts[2].startswith("HTTP/1."):
        raise ProtocolError(f"bad request line: {lines[0]!r}")
    method, target, _version = parts

    headers: Dict[str, str] = {}
    for line in lines[1:]:
        if not line:
            continue
        if len(headers) >= MAX_HEADER_COUNT:
            raise ProtocolError("too many headers")
        name, sep, value = line.partition(":")
        if not sep:
            raise ProtocolError(f"bad header line: {line!r}")
        headers[name.strip().lower()] = value.strip()

    split = urlsplit(target)
    path = unquote(split.path) or "/"
    query = dict(parse_qsl(split.query, keep_blank_values=True))

    body = b""
    raw_length = headers.get("content-length")
    if raw_length is not None:
        try:
            length = int(raw_length)
        except ValueError as exc:
            raise ProtocolError(f"bad content-length: {raw_length!r}") from exc
        if length < 0:
            raise ProtocolError(f"bad content-length: {raw_length!r}")
        if length > max_body:
            raise PayloadTooLarge(f"body of {length} bytes exceeds {max_body}")
        if length:
            try:
                body = await reader.readexactly(length)
            except asyncio.IncompleteReadError as exc:
                raise ProtocolError("truncated request body") from exc
    elif headers.get("transfer-encoding"):
        raise ProtocolError("chunked transfer encoding is not supported")

    return HTTPRequest(method=method, target=target, path=path,
                       query=query, headers=headers, body=body)


def response_bytes(
    status: int,
    body: bytes = b"",
    *,
    content_type: str = "application/json",
    headers: Optional[Mapping[str, str]] = None,
) -> bytes:
    """Serialize a full ``Connection: close`` HTTP/1.1 response."""
    reason = REASONS.get(status, "Unknown")
    lines = [f"HTTP/1.1 {status} {reason}"]
    base = {
        "Content-Type": content_type,
        "Content-Length": str(len(body)),
        "Connection": "close",
    }
    if headers:
        base.update(headers)
    lines.extend(f"{name}: {value}" for name, value in base.items())
    return ("\r\n".join(lines) + "\r\n\r\n").encode("latin-1") + body


def json_response(
    status: int, payload: object, *, headers: Optional[Mapping[str, str]] = None
) -> bytes:
    body = json.dumps(payload, sort_keys=True).encode("utf-8")
    return response_bytes(status, body, headers=headers)


def error_response(
    status: int,
    error: str,
    detail: str = "",
    *,
    headers: Optional[Mapping[str, str]] = None,
) -> bytes:
    """A named JSON error body: ``{"error": <code>, "detail": <text>}``."""
    return json_response(status, {"error": error, "detail": detail},
                         headers=headers)


# --------------------------------------------------------------------------
# RFC 6455 websocket: handshake + sans-io frame codec
# --------------------------------------------------------------------------

WS_GUID = "258EAFA5-E914-47DA-95CA-C5AB0DC85B11"

OP_CONT = 0x0
OP_TEXT = 0x1
OP_BINARY = 0x2
OP_CLOSE = 0x8
OP_PING = 0x9
OP_PONG = 0xA
_DATA_OPCODES = (OP_CONT, OP_TEXT, OP_BINARY)
_CONTROL_OPCODES = (OP_CLOSE, OP_PING, OP_PONG)

CLOSE_NORMAL = 1000
CLOSE_GOING_AWAY = 1001
CLOSE_PROTOCOL_ERROR = 1002
CLOSE_POLICY = 1008
CLOSE_TOO_BIG = 1009
CLOSE_INTERNAL = 1011


def websocket_accept_key(client_key: str) -> str:
    """``Sec-WebSocket-Accept`` for a client's ``Sec-WebSocket-Key``."""
    digest = hashlib.sha1((client_key + WS_GUID).encode("ascii")).digest()
    return base64.b64encode(digest).decode("ascii")


def handshake_response(client_key: str) -> bytes:
    """The 101 Switching Protocols reply completing the upgrade."""
    return (
        "HTTP/1.1 101 Switching Protocols\r\n"
        "Upgrade: websocket\r\n"
        "Connection: Upgrade\r\n"
        f"Sec-WebSocket-Accept: {websocket_accept_key(client_key)}\r\n"
        "\r\n"
    ).encode("latin-1")


@dataclass(frozen=True)
class Frame:
    """One decoded websocket frame."""

    fin: bool
    opcode: int
    payload: bytes

    @property
    def is_control(self) -> bool:
        return self.opcode in _CONTROL_OPCODES


def encode_frame(
    opcode: int,
    payload: bytes = b"",
    *,
    fin: bool = True,
    mask: bool = False,
    mask_key: Optional[bytes] = None,
) -> bytes:
    """Serialize one frame.  Clients must mask; servers must not."""
    if opcode in _CONTROL_OPCODES and (len(payload) > 125 or not fin):
        raise ProtocolError("control frames must be final and <= 125 bytes")
    head = bytearray([(0x80 if fin else 0x00) | opcode])
    length = len(payload)
    mask_bit = 0x80 if mask else 0x00
    if length <= 125:
        head.append(mask_bit | length)
    elif length <= 0xFFFF:
        head.append(mask_bit | 126)
        head += struct.pack(">H", length)
    else:
        head.append(mask_bit | 127)
        head += struct.pack(">Q", length)
    if not mask:
        return bytes(head) + payload
    key = mask_key if mask_key is not None else os.urandom(4)
    if len(key) != 4:
        raise ProtocolError("mask key must be 4 bytes")
    return bytes(head) + key + apply_mask(payload, key)


def apply_mask(payload: bytes, key: bytes) -> bytes:
    """XOR-mask ``payload`` with the 4-byte ``key`` (involution)."""
    if not payload:
        return b""
    repeated = key * (len(payload) // 4 + 1)
    return (int.from_bytes(payload, "big")
            ^ int.from_bytes(repeated[: len(payload)], "big")
            ).to_bytes(len(payload), "big")


def decode_frame(buf: bytes) -> Optional[Tuple[Frame, int]]:
    """Decode one frame from ``buf``; ``None`` if more bytes are needed.

    Returns ``(frame, consumed)``.  Raises :class:`ProtocolError` on
    reserved bits, bad opcodes, or oversized/fragmented control frames.
    """
    if len(buf) < 2:
        return None
    b0, b1 = buf[0], buf[1]
    fin = bool(b0 & 0x80)
    if b0 & 0x70:
        raise ProtocolError("reserved bits set")
    opcode = b0 & 0x0F
    if opcode not in _DATA_OPCODES and opcode not in _CONTROL_OPCODES:
        raise ProtocolError(f"bad opcode 0x{opcode:x}")
    masked = bool(b1 & 0x80)
    length = b1 & 0x7F
    offset = 2
    if opcode in _CONTROL_OPCODES and (length > 125 or not fin):
        raise ProtocolError("control frames must be final and <= 125 bytes")
    if length == 126:
        if len(buf) < offset + 2:
            return None
        length = struct.unpack_from(">H", buf, offset)[0]
        offset += 2
    elif length == 127:
        if len(buf) < offset + 8:
            return None
        length = struct.unpack_from(">Q", buf, offset)[0]
        offset += 8
    key = b""
    if masked:
        if len(buf) < offset + 4:
            return None
        key = buf[offset:offset + 4]
        offset += 4
    if len(buf) < offset + length:
        return None
    payload = buf[offset:offset + length]
    if masked:
        payload = apply_mask(payload, key)
    return Frame(fin=fin, opcode=opcode, payload=payload), offset + length


def encode_close(code: int = CLOSE_NORMAL, reason: str = "") -> bytes:
    """The payload of a close frame: big-endian code + utf-8 reason."""
    return struct.pack(">H", code) + reason.encode("utf-8")


def decode_close(payload: bytes) -> Tuple[int, str]:
    """Parse a close frame payload; empty payload means no code (1005)."""
    if not payload:
        return 1005, ""
    if len(payload) < 2:
        raise ProtocolError("close payload of 1 byte")
    code = struct.unpack(">H", payload[:2])[0]
    return code, payload[2:].decode("utf-8", errors="replace")


# --------------------------------------------------------------------------
# Asyncio websocket endpoint (used server-side after the handshake)
# --------------------------------------------------------------------------


@dataclass
class WebSocket:
    """A websocket endpoint over asyncio streams.

    Servers send unmasked frames (``mask_frames=False``); a client
    endpoint would flip it.  :meth:`recv` assembles fragmented
    messages, answers pings, and returns ``None`` once the peer closes
    (echoing the close frame exactly once).
    """

    reader: asyncio.StreamReader
    writer: asyncio.StreamWriter
    mask_frames: bool = False
    max_message: int = 1 << 20
    _buf: bytearray = field(default_factory=bytearray, repr=False)
    _closed: bool = field(default=False, repr=False)
    close_code: Optional[int] = None

    async def _read_frame(self) -> Optional[Frame]:
        while True:
            decoded = decode_frame(bytes(self._buf))
            if decoded is not None:
                frame, consumed = decoded
                del self._buf[:consumed]
                return frame
            chunk = await self.reader.read(65536)
            if not chunk:
                return None
            self._buf += chunk

    async def recv(self) -> Optional[Tuple[int, bytes]]:
        """Next complete data message as ``(opcode, payload)``.

        ``None`` once the connection is closed (by close frame or EOF).
        """
        opcode: Optional[int] = None
        parts: list = []
        size = 0
        while True:
            frame = await self._read_frame()
            if frame is None:
                return None
            if frame.opcode == OP_PING:
                await self.send_frame(OP_PONG, frame.payload)
                continue
            if frame.opcode == OP_PONG:
                continue
            if frame.opcode == OP_CLOSE:
                self.close_code = decode_close(frame.payload)[0]
                await self.close(echo_payload=frame.payload)
                return None
            if frame.opcode == OP_CONT:
                if opcode is None:
                    raise ProtocolError("continuation without a start frame")
            else:
                if opcode is not None:
                    raise ProtocolError("interleaved data message")
                opcode = frame.opcode
            parts.append(frame.payload)
            size += len(frame.payload)
            if size > self.max_message:
                await self.close(CLOSE_TOO_BIG)
                raise ProtocolError(f"message exceeds {self.max_message} bytes")
            if frame.fin:
                return opcode, b"".join(parts)

    async def send_frame(self, opcode: int, payload: bytes = b"") -> None:
        if self._closed and opcode != OP_CLOSE:
            return
        self.writer.write(encode_frame(opcode, payload, mask=self.mask_frames))
        await self.writer.drain()

    async def send_text(self, text: str) -> None:
        await self.send_frame(OP_TEXT, text.encode("utf-8"))

    async def send_json(self, payload: object) -> None:
        await self.send_text(json.dumps(payload, sort_keys=True))

    async def ping(self, payload: bytes = b"") -> None:
        await self.send_frame(OP_PING, payload)

    async def close(
        self,
        code: int = CLOSE_NORMAL,
        reason: str = "",
        *,
        echo_payload: Optional[bytes] = None,
    ) -> None:
        """Send a close frame once; safe to call repeatedly."""
        if self._closed:
            return
        self._closed = True
        payload = echo_payload if echo_payload is not None \
            else encode_close(code, reason)
        try:
            self.writer.write(
                encode_frame(OP_CLOSE, payload, mask=self.mask_frames))
            await self.writer.drain()
        except (ConnectionError, RuntimeError):
            pass
