"""A blocking stdlib client for the job service.

``http.client`` for the REST verbs, a raw masked-frame socket for the
websocket stream — no dependencies, so the examples, the CI smoke
script, and the load bench all speak the real wire protocol.
"""

from __future__ import annotations

import base64
import http.client
import json
import os
import socket
import time
from typing import Dict, Iterator, Optional, Tuple, Union

from .protocol import (
    OP_CLOSE,
    OP_PING,
    OP_PONG,
    OP_TEXT,
    ProtocolError,
    decode_frame,
    encode_close,
    encode_frame,
    websocket_accept_key,
)


class ServiceError(RuntimeError):
    """A non-2xx REST response, with the named error body attached."""

    def __init__(self, status: int, payload: dict,
                 headers: Dict[str, str]) -> None:
        code = payload.get("error", "error") if isinstance(payload, dict) else "error"
        detail = payload.get("detail", "") if isinstance(payload, dict) else ""
        super().__init__(f"HTTP {status} {code}: {detail}")
        self.status = status
        self.payload = payload
        self.headers = headers

    @property
    def retry_after(self) -> Optional[int]:
        value = self.headers.get("retry-after")
        return int(value) if value is not None else None


class ServiceClient:
    """One service endpoint; stateless between calls (one-shot requests)."""

    def __init__(self, host: str, port: int, *, token: Optional[str] = None,
                 timeout: float = 30.0) -> None:
        self.host = host
        self.port = port
        self.token = token
        self.timeout = timeout

    # -- REST --------------------------------------------------------------
    def request(self, method: str, path: str,
                payload: Optional[object] = None,
                ) -> Tuple[int, Dict[str, str], object]:
        """One HTTP exchange; returns (status, headers, parsed body)."""
        conn = http.client.HTTPConnection(self.host, self.port,
                                          timeout=self.timeout)
        headers = {}
        if self.token is not None:
            headers["X-Client-Token"] = self.token
        body = None
        if payload is not None:
            body = json.dumps(payload).encode("utf-8")
            headers["Content-Type"] = "application/json"
        try:
            conn.request(method, path, body=body, headers=headers)
            response = conn.getresponse()
            raw = response.read()
            status = response.status
            resp_headers = {k.lower(): v for k, v in response.getheaders()}
        finally:
            conn.close()
        try:
            parsed: object = json.loads(raw) if raw else None
        except json.JSONDecodeError:
            parsed = raw.decode("utf-8", errors="replace")
        return status, resp_headers, parsed

    def _checked(self, method: str, path: str,
                 payload: Optional[object] = None) -> object:
        status, headers, parsed = self.request(method, path, payload)
        if status >= 400:
            raise ServiceError(status, parsed if isinstance(parsed, dict)
                               else {"error": "error", "detail": str(parsed)},
                               headers)
        return parsed

    def submit(self, job: dict) -> dict:
        """``POST /jobs`` — returns the created job view (or raises
        :class:`ServiceError` carrying the named 4xx/503 body)."""
        return self._checked("POST", "/jobs", job)

    def job(self, job_id: str) -> dict:
        return self._checked("GET", f"/jobs/{job_id}")

    def result(self, job_id: str) -> dict:
        return self._checked("GET", f"/jobs/{job_id}/result")

    def cancel(self, job_id: str) -> dict:
        return self._checked("DELETE", f"/jobs/{job_id}")

    def scenarios(self) -> dict:
        return self._checked("GET", "/scenarios")

    def schema(self) -> dict:
        return self._checked("GET", "/scenarios/schema")

    def wait(self, job_id: str, timeout: float = 60.0,
             poll: float = 0.1) -> dict:
        """Poll until the job reaches a terminal state."""
        deadline = time.monotonic() + timeout
        while True:
            view = self.job(job_id)
            if view["state"] in ("done", "failed", "cancelled"):
                return view
            if time.monotonic() >= deadline:
                raise TimeoutError(f"job {job_id} still {view['state']} "
                                   f"after {timeout}s")
            time.sleep(poll)

    # -- websocket stream --------------------------------------------------
    def stream(self, job_id: str) -> Iterator[Tuple[str, Union[str, dict]]]:
        """Yield ``("record", raw-line)`` / ``("event", dict)`` messages.

        Records are the exact stored bytes (as text); the iterator ends
        after the server's ``end`` event (or when it closes).
        """
        sock = socket.create_connection((self.host, self.port),
                                        timeout=self.timeout)
        try:
            yield from self._stream_frames(sock, job_id)
        finally:
            sock.close()

    def _stream_frames(self, sock: socket.socket, job_id: str):
        key = base64.b64encode(os.urandom(16)).decode("ascii")
        lines = [f"GET /jobs/{job_id}/stream HTTP/1.1",
                 f"Host: {self.host}:{self.port}",
                 "Upgrade: websocket", "Connection: Upgrade",
                 f"Sec-WebSocket-Key: {key}", "Sec-WebSocket-Version: 13"]
        if self.token is not None:
            lines.append(f"X-Client-Token: {self.token}")
        sock.sendall(("\r\n".join(lines) + "\r\n\r\n").encode("latin-1"))

        buf = self._read_until(sock, b"\r\n\r\n")
        head, _, rest = buf.partition(b"\r\n\r\n")
        status_line = head.split(b"\r\n", 1)[0].decode("latin-1")
        if " 101 " not in f"{status_line} ":
            raise ServiceError(int(status_line.split(" ")[1]),
                               {"error": "handshake-refused",
                                "detail": status_line}, {})
        accept = websocket_accept_key(key)
        got = ""
        for line in head.split(b"\r\n")[1:]:
            name, _, value = line.partition(b":")
            if name.strip().lower() == b"sec-websocket-accept":
                got = value.strip().decode("ascii")
        if got != accept:
            raise ProtocolError(f"bad Sec-WebSocket-Accept: {got!r}")

        data = bytearray(rest)
        closed = False
        while True:
            decoded = decode_frame(bytes(data))
            if decoded is None:
                chunk = sock.recv(65536)
                if not chunk:
                    return
                data += chunk
                continue
            frame, consumed = decoded
            del data[:consumed]
            if frame.opcode == OP_PING:
                sock.sendall(encode_frame(OP_PONG, frame.payload, mask=True))
                continue
            if frame.opcode == OP_CLOSE:
                if not closed:
                    sock.sendall(encode_frame(OP_CLOSE, encode_close(),
                                              mask=True))
                return
            if frame.opcode != OP_TEXT:
                continue
            text = frame.payload.decode("utf-8")
            parsed = json.loads(text)
            if isinstance(parsed, dict) and "event" in parsed:
                yield "event", parsed
                if parsed["event"] == "end":
                    sock.sendall(encode_frame(OP_CLOSE, encode_close(),
                                              mask=True))
                    closed = True
            else:
                yield "record", text

    @staticmethod
    def _read_until(sock: socket.socket, marker: bytes) -> bytes:
        buf = bytearray()
        while marker not in buf:
            chunk = sock.recv(65536)
            if not chunk:
                raise ProtocolError("connection closed during handshake")
            buf += chunk
        return bytes(buf)
