"""``GET /jobs/{id}/stream`` — replay stored records, then tail live.

The stream is the store, verbatim: every data message is one record
line exactly as the job's :class:`~repro.experiments.campaign
.CampaignStore` holds it (checksum field included, trailing newline
stripped).  There is exactly one serialization —
``encode_record_line(_trial_row(...))`` — shared by ``repro campaign``,
the fabric workers, and this websocket, so a streamed job is
byte-identical to the same spec run directly.

Control messages are JSON objects carrying an ``"event"`` key (record
rows never have one): a ``job`` hello on connect, periodic ``summary``
events once a slow client overflows its queue, and a final ``end``.

Backpressure: each client gets a bounded :class:`asyncio.Queue`.  The
producer never awaits the client — a full queue flips the stream into
*summary-only* mode permanently (records are counted, not queued), so
a slow reader costs the worker nothing and still learns how far the
job has progressed.
"""

from __future__ import annotations

import asyncio
import json
import time
from pathlib import Path
from typing import List, Tuple

from ..experiments.campaign import decode_record_line
from ..obs import metrics as obs_metrics
from .jobs import TERMINAL_STATES, Job, JobManager
from .protocol import CLOSE_NORMAL, ProtocolError, WebSocket

__all__ = ["DEFAULT_QUEUE_LIMIT", "SUMMARY_INTERVAL", "RecordTail",
           "stream_job"]

_STREAM_EVENTS = obs_metrics.counter(
    "repro_stream_events_total",
    "Stream lifecycle events across all connections",
    ("event",))
_STREAM_OPENED = _STREAM_EVENTS.labels(event="opened")
_STREAM_BACKPRESSURE = _STREAM_EVENTS.labels(event="backpressure_flip")
_STREAM_RESUMED = _STREAM_EVENTS.labels(event="resumed")

#: per-client queue bound — overflow flips the stream to summary-only
DEFAULT_QUEUE_LIMIT = 256
#: how often a summary event goes out while in summary-only mode
SUMMARY_INTERVAL = 0.5


class RecordTail:
    """Incremental reader over a store directory's ``*.jsonl`` files.

    Byte offsets per file; only complete, checksum-valid lines are
    yielded (a torn tail left by a kill is skipped exactly as
    ``iter_records`` skips it, then picked up once the writer stitches
    a newline).  New files (other shards, compaction) are discovered on
    every poll.
    """

    def __init__(self, store_dir) -> None:
        self.root = Path(store_dir)
        self._cursors = {}

    def poll(self) -> List[str]:
        lines: List[str] = []
        for path in sorted(self.root.glob("*.jsonl")):
            offset, partial = self._cursors.get(path.name, (0, b""))
            try:
                with open(path, "rb") as fh:
                    fh.seek(offset)
                    chunk = fh.read()
            except OSError:
                continue
            if not chunk:
                continue
            offset += len(chunk)
            parts = (partial + chunk).split(b"\n")
            partial = parts.pop()
            for raw in parts:
                if not raw:
                    continue
                text = raw.decode("utf-8", errors="replace")
                if decode_record_line(text)[0] is not None:
                    lines.append(text)
            self._cursors[path.name] = (offset, partial)
        return lines


def _event(payload: dict) -> str:
    return json.dumps(payload, sort_keys=True)


async def stream_job(
    manager: JobManager,
    job: Job,
    ws: WebSocket,
    *,
    poll: float = 0.05,
    queue_limit: int = DEFAULT_QUEUE_LIMIT,
    summary_interval: float = SUMMARY_INTERVAL,
) -> None:
    """Serve one stream connection until the job ends or the client goes."""
    queue: asyncio.Queue = asyncio.Queue(maxsize=queue_limit)
    await ws.send_text(_event({"event": "job", **job.view(manager.progress(job))}))
    _STREAM_OPENED.inc()

    async def producer() -> None:
        tail = RecordTail(manager.store_dir(job.id))
        seen = dropped = 0
        summary_mode = False
        last_summary = 0.0
        seen_requeues = job.requeues
        while True:
            if job.requeues != seen_requeues:
                # the worker died (or drained) mid-job and the manager put
                # the job back in queue: tell the client it will resume,
                # not that it ended.  The counter survives the instant
                # queued -> running flip of the scheduler loop.
                seen_requeues = job.requeues
                _STREAM_RESUMED.inc()
                try:
                    queue.put_nowait(("event", _event(
                        {"event": "resumed", "job": job.id,
                         "state": job.state, "requeues": job.requeues,
                         "records": seen})))
                except asyncio.QueueFull:
                    pass  # summary events carry the state anyway
            lines = tail.poll()
            for line in lines:
                seen += 1
                if summary_mode:
                    dropped += 1
                    continue
                try:
                    queue.put_nowait(("record", line))
                except asyncio.QueueFull:
                    # the client is slower than the job: stop shipping
                    # records for good, keep counting them
                    summary_mode = True
                    _STREAM_BACKPRESSURE.inc()
                    dropped += 1
            now = time.monotonic()
            if summary_mode and now - last_summary >= summary_interval:
                try:
                    queue.put_nowait(("event", _event(
                        {"event": "summary", "state": job.state,
                         "records": seen, "dropped": dropped})))
                    last_summary = now
                except asyncio.QueueFull:
                    pass
            if job.state in TERMINAL_STATES and not lines:
                await queue.put(("end", _event(
                    {"event": "end", "state": job.state,
                     "records": seen, "dropped": dropped})))
                return
            await asyncio.sleep(poll)

    async def sender() -> None:
        while True:
            kind, text = await queue.get()
            try:
                await ws.send_text(text)
            except (ConnectionError, RuntimeError):
                return
            if kind == "end":
                await ws.close(CLOSE_NORMAL)
                return

    async def receiver() -> None:
        # drive pings/close from the peer; returns once the client leaves
        try:
            while await ws.recv() is not None:
                pass
        except (ProtocolError, ConnectionError):
            pass

    produce = asyncio.ensure_future(producer())
    pump = asyncio.ensure_future(sender())
    watch = asyncio.ensure_future(receiver())
    try:
        await asyncio.wait({pump, watch}, return_when=asyncio.FIRST_COMPLETED)
    finally:
        for task in (produce, pump, watch):
            task.cancel()
        await asyncio.gather(produce, pump, watch, return_exceptions=True)
