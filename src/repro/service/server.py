"""The asyncio server: accept loop, lifecycle, drain, embedding.

Three ways to run it::

    serve(ServiceConfig(...))            # blocking; installs SIGTERM/SIGINT
    async with/await ReproService(...)   # inside an existing event loop
    with ServiceThread(config) as svc:   # background thread (tests, bench,
        client = svc.client()            # quickstart) — own loop, own drain

SIGTERM drains exactly like the fabric coordinator from PR 7: stop
accepting submissions (503 + Retry-After), SIGTERM every worker so it
finishes its current slice and releases, escalate after the grace
period, requeue whatever released, persist the job table, exit 0.  A
SIGKILL instead loses nothing either — restart on the same state dir
and :meth:`~repro.service.jobs.JobManager.recover` resumes the table.
"""

from __future__ import annotations

import asyncio
import signal
import threading
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Optional, Set

from ..obs import metrics as obs_metrics
from .api import ServiceApi
from .jobs import JobManager
from .protocol import (
    PayloadTooLarge,
    ProtocolError,
    error_response,
    read_request,
)
from .quotas import QuotaPolicy

_REQUEST_SECONDS = obs_metrics.histogram(
    "repro_request_seconds",
    "HTTP request latency (parse excluded, dispatch + write included)",
).labels()


@dataclass(frozen=True)
class ServiceConfig:
    """Everything one service instance needs."""

    state_dir: Path
    host: str = "127.0.0.1"
    port: int = 0  # 0 = ephemeral; the bound port is ReproService.port
    workers: int = 2
    quota: QuotaPolicy = field(default_factory=QuotaPolicy)
    poll_interval: float = 0.05
    kill_grace: float = 5.0
    max_body: int = 1 << 20
    banner: bool = False


class ReproService:
    """One running service instance inside the current event loop."""

    def __init__(self, config: ServiceConfig) -> None:
        self.config = config
        self.manager = JobManager(
            Path(config.state_dir), workers=config.workers,
            poll_interval=config.poll_interval, kill_grace=config.kill_grace)
        self.api = ServiceApi(self.manager, config.quota)
        self.port: Optional[int] = None
        self._server: Optional[asyncio.base_events.Server] = None
        self._scheduler: Optional[asyncio.Task] = None
        self._conns: Set[asyncio.Task] = set()
        self._stop = asyncio.Event()

    async def start(self) -> "ReproService":
        recovered = self.manager.recover()
        self._server = await asyncio.start_server(
            self._handle, self.config.host, self.config.port)
        self.port = self._server.sockets[0].getsockname()[1]
        self._scheduler = asyncio.ensure_future(self.manager.run(self._stop))
        if self.config.banner:
            print(f"repro.service listening on {self.config.host}:{self.port} "
                  f"(jobs: {recovered['jobs']} recovered, "
                  f"{recovered['requeued']} requeued)", flush=True)
        return self

    def request_stop(self) -> None:
        """Begin the drain; idempotent, safe from a signal handler."""
        self.api.draining = True
        self._stop.set()

    async def until_stopped(self) -> None:
        await self._stop.wait()

    async def shutdown(self) -> None:
        """Drain and tear down: see the module docstring for the order."""
        self.request_stop()
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
        await self.manager.drain()
        if self._scheduler is not None:
            await self._scheduler
        for task in list(self._conns):
            task.cancel()
        if self._conns:
            await asyncio.gather(*self._conns, return_exceptions=True)

    # -- one connection ----------------------------------------------------
    async def _handle(self, reader: asyncio.StreamReader,
                      writer: asyncio.StreamWriter) -> None:
        task = asyncio.current_task()
        if task is not None:
            self._conns.add(task)
        try:
            await self._serve_connection(reader, writer)
        except (ConnectionError, asyncio.CancelledError):
            pass
        finally:
            if task is not None:
                self._conns.discard(task)
            try:
                writer.close()
                await writer.wait_closed()
            except (ConnectionError, RuntimeError, asyncio.CancelledError):
                pass

    async def _serve_connection(self, reader, writer) -> None:
        try:
            request = await read_request(reader, max_body=self.config.max_body)
        except PayloadTooLarge as exc:
            writer.write(error_response(413, "payload-too-large", str(exc)))
            await writer.drain()
            return
        except ProtocolError as exc:
            writer.write(error_response(400, "bad-request", str(exc)))
            await writer.drain()
            return
        if request is None:
            return
        if request.wants_websocket:
            await self.api.handle_stream(request, reader, writer)
            return
        started = time.monotonic()
        try:
            response = self.api.dispatch(request)
        except Exception as exc:  # noqa: BLE001 — one bad request != dead server
            response = error_response(500, "internal-error", repr(exc))
        writer.write(response)
        await writer.drain()
        _REQUEST_SECONDS.observe(time.monotonic() - started)


async def _amain(config: ServiceConfig) -> None:
    service = ReproService(config)
    await service.start()
    loop = asyncio.get_running_loop()
    for signum in (signal.SIGTERM, signal.SIGINT):
        try:
            loop.add_signal_handler(signum, service.request_stop)
        except (NotImplementedError, RuntimeError):
            pass  # non-main thread / platform without signal support
    await service.until_stopped()
    await service.shutdown()


def serve(config: ServiceConfig) -> int:
    """Run the service until SIGTERM/SIGINT, then drain; returns 0."""
    asyncio.run(_amain(config))
    return 0


class ServiceThread:
    """A service on a background thread — for tests, benches, examples.

    The thread runs its own event loop; :meth:`stop` triggers the same
    drain path as SIGTERM and joins.  Usable as a context manager.
    """

    def __init__(self, config: ServiceConfig) -> None:
        self.config = config
        self._ready = threading.Event()
        self._error: Optional[BaseException] = None
        self._service: Optional[ReproService] = None
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self._thread = threading.Thread(target=self._run, daemon=True)

    @property
    def port(self) -> int:
        assert self._service is not None and self._service.port is not None
        return self._service.port

    @property
    def host(self) -> str:
        return self.config.host

    def start(self) -> "ServiceThread":
        self._thread.start()
        self._ready.wait(timeout=30.0)
        if self._error is not None:
            raise RuntimeError("service failed to start") from self._error
        if self._service is None or self._service.port is None:
            raise RuntimeError("service did not come up within 30s")
        return self

    def stop(self, timeout: float = 30.0) -> None:
        if self._loop is not None and self._service is not None:
            try:
                self._loop.call_soon_threadsafe(self._service.request_stop)
            except RuntimeError:
                pass  # loop already closed
        self._thread.join(timeout=timeout)

    def client(self, token: Optional[str] = None):
        from .client import ServiceClient

        return ServiceClient(self.host, self.port, token=token)

    def __enter__(self) -> "ServiceThread":
        return self.start()

    def __exit__(self, *exc_info) -> None:
        self.stop()

    def _run(self) -> None:
        try:
            asyncio.run(self._amain())
        except BaseException as exc:  # noqa: BLE001 — surfaced via start()
            self._error = exc
            self._ready.set()

    async def _amain(self) -> None:
        service = ReproService(self.config)
        self._service = service
        self._loop = asyncio.get_running_loop()
        await service.start()
        self._ready.set()
        await service.until_stopped()
        await service.shutdown()
