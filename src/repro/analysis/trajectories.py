"""Trajectory analytics: per-step structural series of a dynamics run.

The paper's discussion reasons about what happens *along* runs (social
cost decay, diameter evolution, which agents move, operation phases).
:func:`trace_run` replays a recorded trajectory and collects those
series; :func:`summarize` condenses them for reports.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Dict, List, Optional

import numpy as np

from ..core.dynamics import RunResult
from ..core.games import Game
from ..core.network import Network
from ..graphs import adjacency as adj
from ..statespace.encode import state_key

__all__ = ["TrajectoryTrace", "trace_run", "summarize", "annotate_cycle"]


@dataclass
class TrajectoryTrace:
    """Structural series along one run (length = steps + 1 states)."""

    social_cost: List[float] = field(default_factory=list)
    diameter: List[float] = field(default_factory=list)
    edge_count: List[int] = field(default_factory=list)
    max_agent_cost: List[float] = field(default_factory=list)
    mover: List[int] = field(default_factory=list)  # length = steps
    kind: List[str] = field(default_factory=list)

    @property
    def steps(self) -> int:
        """Number of moves in the traced run."""
        return len(self.mover)

    def social_cost_monotone(self) -> bool:
        """Whether the social cost never increased (true for potential
        games like the SUM-SG on trees; false in general)."""
        return all(b <= a + 1e-9 for a, b in zip(self.social_cost, self.social_cost[1:]))

    def distinct_movers(self) -> int:
        """How many different agents ever moved."""
        return len(set(self.mover))


def trace_run(game: Game, initial: Network, result: RunResult) -> TrajectoryTrace:
    """Replay ``result.trajectory`` from ``initial`` and collect series.

    ``result`` must have been produced with ``record_trajectory=True``
    from the same ``initial`` state.
    """
    net = initial.copy()
    trace = TrajectoryTrace()

    def snapshot() -> None:
        costs = game.cost_vector(net)
        trace.social_cost.append(float(costs.sum()))
        trace.max_agent_cost.append(float(costs.max()))
        trace.diameter.append(adj.diameter(net.A))
        trace.edge_count.append(net.m)

    snapshot()
    for rec in result.trajectory:
        rec.move.apply(net)
        trace.mover.append(rec.agent)
        trace.kind.append(rec.kind)
        snapshot()
    if state_key(net) != state_key(result.final):
        raise ValueError("trajectory does not replay to the recorded final state")
    return trace


def annotate_cycle(initial: Network, result: RunResult, with_ownership: bool = True) -> RunResult:
    """Post-hoc cycle detection on a recorded trajectory.

    Runs produced with ``detect_cycles=False`` but a recorded
    trajectory (e.g. a stored trace replayed later) carry no cycle
    information: ``cycled`` is ``False`` and ``cycle_length`` is
    ``None`` even when the trajectory did revisit a state.  This
    replays ``result.trajectory`` from ``initial``, hashes every
    visited state, and on the first revisit returns a copy of
    ``result`` with ``status="cycled"``, ``cycle_start`` set to the
    first visit and ``cycle_end`` to the revisit — so ``cycle_length``
    is the true cycle length even when the revisit happened mid-trace.
    Without a revisit ``result`` is returned unchanged.

    A trajectory is *required*: a run recorded with
    ``record_trajectory=False`` (the sweep runner's default) cannot be
    annotated, and pretending it is acyclic would be silently wrong —
    such results raise instead.

    ``with_ownership`` selects the state notion (see
    :func:`repro.statespace.encode.state_key`, the canonical helper this
    shares with ``run_dynamics``'s live cycle detector and the
    statespace explorer): ownership-sensitive for the asymmetric games,
    topology-only for the Swap Game.
    """
    if result.steps > 0 and not result.trajectory:
        raise ValueError(
            "result carries no trajectory (record_trajectory=False?); "
            "cycle annotation needs the recorded moves"
        )
    if not result.trajectory:
        return result
    net = initial.copy()
    seen = {state_key(net, with_ownership): 0}
    for i, rec in enumerate(result.trajectory):
        rec.move.apply(net)
        key = state_key(net, with_ownership)
        if key in seen:
            return replace(
                result, status="cycled", cycle_start=seen[key], cycle_end=i + 1
            )
        seen[key] = i + 1
    return result


def summarize(trace: TrajectoryTrace) -> Dict[str, object]:
    """Condensed trajectory facts for reports and tests."""
    return {
        "steps": trace.steps,
        "social_cost_initial": trace.social_cost[0],
        "social_cost_final": trace.social_cost[-1],
        "social_cost_monotone": trace.social_cost_monotone(),
        "diameter_initial": trace.diameter[0],
        "diameter_final": trace.diameter[-1],
        "edges_initial": trace.edge_count[0],
        "edges_final": trace.edge_count[-1],
        "distinct_movers": trace.distinct_movers(),
        "kind_counts": dict(
            zip(*np.unique(trace.kind, return_counts=True))
        ) if trace.kind else {},
    }
