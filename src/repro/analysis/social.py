"""Social cost, social optima and price-of-anarchy estimation.

The paper motivates dynamics by the low price of anarchy of NCGs; this
module provides the measurement side: social cost of a state, the exact
social optimum by state enumeration at small ``n``, the star reference
bound at large ``n``, and sampled PoA ratios over converged runs.

Reference-optimum semantics (the correctness contract of this module):

* at ``n <= POA_EXACT_MAX_N`` the reference is the **exact** social
  optimum — the minimum social cost over every connected configuration
  (host-graph restricted when the game carries one), computed by the
  statespace enumeration and cached per game rules;
* at larger ``n`` the reference falls back to the **star's** social
  cost, which is only a *bound*: the star is the SUM-optimal tree, but
  for ``alpha < 2`` denser graphs undercut it, and under a host graph
  that excludes a spanning star it may not even be buildable.  The
  returned kind flag makes the distinction explicit instead of silent.

Edge accounting is derived from the game's own cost rule
(:attr:`~repro.core.costs.EdgeCostRule.total_share` — the per-edge
fraction of alpha appearing in the social cost), never from the old
``alpha > 0`` heuristic that mispriced equal-split games.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

import numpy as np

from ..core.costs import DistanceMode
from ..core.games import Game
from ..core.network import Network

__all__ = [
    "DegenerateInstanceError",
    "POA_EXACT_MAX_N",
    "social_cost",
    "star_social_cost",
    "edge_cost_share",
    "exact_social_optimum",
    "reference_social_optimum",
    "PoASample",
    "sample_price_of_anarchy",
]

#: largest n for which the reference optimum is computed exactly by
#: state enumeration (2^C(n,2) topologies; n=6 is ~33k raw states).
POA_EXACT_MAX_N = 6

#: (game cache token, n) -> exact optimum; the enumeration is pure in
#: the game rules, so one process never recomputes a cell.
_EXACT_OPTIMUM_CACHE: Dict[tuple, Optional[float]] = {}


class DegenerateInstanceError(ValueError):
    """Raised when a price-of-anarchy ratio is undefined (n <= 1, or a
    non-positive reference optimum)."""


def social_cost(game: Game, net: Network) -> float:
    """Sum of all agents' costs under the game's cost model."""
    return game.social_cost(net)


def star_social_cost(
    n: int,
    mode: str,
    alpha: float = 0.0,
    owner_pays: bool = False,
    edge_share: Optional[float] = None,
) -> float:
    """Social cost of the ``n``-vertex star (the SUM-optimal tree).

    SUM distance part: the centre has distance ``n-1``; each leaf has
    ``1 + 2(n-2)``.  MAX distance part: centre 1, leaves 2.  Edge part:
    ``alpha * (n-1) * edge_share`` where ``edge_share`` is the per-edge
    fraction of alpha charged in total over both endpoints (1 for
    owner-pays *and* equal-split rules, 0 for the swap games) — pass it
    from :func:`edge_cost_share`; the legacy boolean ``owner_pays`` is
    kept as a shorthand for shares 1/0.
    """
    if n <= 1:
        return 0.0
    if DistanceMode(mode) is DistanceMode.SUM:
        dist = (n - 1) + (n - 1) * (1 + 2 * (n - 2))
    else:
        dist = 1 + 2 * (n - 1)
    if edge_share is None:
        edge_share = 1.0 if owner_pays else 0.0
    edge = alpha * (n - 1) * edge_share
    return float(dist + edge)


def edge_cost_share(game: Game) -> float:
    """Per-edge fraction of alpha in ``game``'s *social* cost, derived
    from the game's own edge rule (never from an ``alpha > 0`` guess).

    Raises ``ValueError`` for custom rules that declare no shares.
    """
    share = game.edge_rule.total_share
    if share is None:
        raise ValueError(
            f"edge rule {game.edge_rule.name!r} declares no owner/peer shares; "
            "pass an explicit optimum to price-of-anarchy helpers"
        )
    return share


def exact_social_optimum(game: Game, n: int) -> Optional[float]:
    """Exact minimum social cost over every connected configuration on
    ``n`` vertices, or ``None`` when ``n > POA_EXACT_MAX_N``.

    Enumerates topologies only (``2^C(n,2)``): for every rule that
    declares its shares the social cost is ownership-independent — each
    edge contributes ``total_share * alpha`` in total no matter which
    endpoint owns it — so the canonical-ownership representative prices
    every assignment.  Host-graph restricted when the game carries one.
    Cached per ``(game rules, n)``.
    """
    if n > POA_EXACT_MAX_N:
        return None
    edge_cost_share(game)  # raises early for share-less custom rules
    cache_key = (game.cache_token(), n)
    if cache_key in _EXACT_OPTIMUM_CACHE:
        return _EXACT_OPTIMUM_CACHE[cache_key]
    from ..statespace.explore import enumerate_states

    best: Optional[float] = None
    for net in enumerate_states(n, with_ownership=False, connected_only=True):
        if game.host is not None and bool(np.any(net.A & ~game.host)):
            continue
        cost = game.social_cost(net)
        if best is None or cost < best:
            best = cost
    _EXACT_OPTIMUM_CACHE[cache_key] = best
    return best


def reference_social_optimum(game: Game, n: int) -> Tuple[float, str]:
    """Reference optimum for PoA ratios: ``(value, kind)``.

    ``kind`` is ``"exact"`` (census optimum, small ``n``) or
    ``"star-bound"`` (the star's social cost — a reference bound, *not*
    a certified optimum: denser graphs undercut it for ``alpha < 2``,
    and under a host graph excluding every spanning star it is not even
    attainable).  Raises :class:`DegenerateInstanceError` for ``n <= 1``
    and when a host graph leaves no connected configuration at all.
    """
    if n <= 1:
        raise DegenerateInstanceError(
            f"price of anarchy is undefined for n={n}: a <=1-agent network "
            "has social cost 0 and no meaningful optimum"
        )
    exact = exact_social_optimum(game, n)
    if exact is not None:
        return exact, "exact"
    return (
        star_social_cost(n, game.mode.value, alpha=game.alpha,
                         edge_share=edge_cost_share(game)),
        "star-bound",
    )


@dataclass
class PoASample:
    """Sampled price-of-anarchy statistics over converged dynamics runs.

    ``reference`` is the denominator used; ``reference_kind`` says what
    it was — ``"exact"`` (census optimum), ``"star-bound"`` (reference
    bound only) or ``"given"`` (caller-supplied).
    """

    ratios: List[float]
    reference: float = 0.0
    reference_kind: str = "given"

    @property
    def is_exact(self) -> bool:
        """Whether the denominator is a certified social optimum."""
        return self.reference_kind == "exact"

    @property
    def max(self) -> float:
        """Worst sampled cost ratio (the PoA estimate)."""
        return max(self.ratios)

    @property
    def mean(self) -> float:
        """Average sampled cost ratio (the price of stability side)."""
        return float(np.mean(self.ratios))


def sample_price_of_anarchy(
    game: Game,
    finals: List[Network],
    optimum: Optional[float] = None,
) -> PoASample:
    """Ratio of converged states' social cost to a reference optimum.

    When ``optimum`` is omitted the reference comes from
    :func:`reference_social_optimum`: the exact census optimum at small
    ``n``, else the star bound (flagged as such on the returned sample).
    Edge accounting is derived from the game's cost rule.  Raises
    :class:`DegenerateInstanceError` (a ``ValueError``) for degenerate
    instances — ``n <= 1`` or a non-positive reference — instead of
    dividing by zero; every returned ratio is finite.
    """
    if not finals:
        raise ValueError("no final networks given")
    n = finals[0].n
    kind = "given"
    if optimum is None:
        optimum, kind = reference_social_optimum(game, n)
    if not optimum > 0:
        raise DegenerateInstanceError(
            f"reference optimum {optimum!r} is not positive; "
            "a price-of-anarchy ratio is undefined"
        )
    ratios = [social_cost(game, f) / optimum for f in finals]
    return PoASample(ratios, reference=float(optimum), reference_kind=kind)
