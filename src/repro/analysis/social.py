"""Social cost, social optima and price-of-anarchy estimation.

The paper motivates dynamics by the low price of anarchy of NCGs; this
module provides the measurement side: social cost of a state, known
social optima on trees, and sampled PoA ratios over converged runs.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

import numpy as np

from ..core.costs import DistanceMode
from ..core.games import Game
from ..core.network import Network
from ..graphs import adjacency as adj

__all__ = ["social_cost", "star_social_cost", "PoASample", "sample_price_of_anarchy"]


def social_cost(game: Game, net: Network) -> float:
    """Sum of all agents' costs under the game's cost model."""
    return game.social_cost(net)


def star_social_cost(n: int, mode: str, alpha: float = 0.0, owner_pays: bool = False) -> float:
    """Social cost of the ``n``-vertex star (the SUM-optimal tree).

    SUM distance part: the centre has distance ``n-1``; each leaf has
    ``1 + 2(n-2)``.  MAX distance part: centre 1, leaves 2.  Edge part:
    ``alpha * (n-1)`` in owner-pays games (counted once over all
    owners), 0 otherwise.
    """
    if n <= 1:
        return 0.0
    if DistanceMode(mode) is DistanceMode.SUM:
        dist = (n - 1) + (n - 1) * (1 + 2 * (n - 2))
    else:
        dist = 1 + 2 * (n - 1)
    edge = alpha * (n - 1) if owner_pays else 0.0
    return float(dist + edge)


@dataclass
class PoASample:
    """Sampled price-of-anarchy statistics over converged dynamics runs."""

    ratios: List[float]

    @property
    def max(self) -> float:
        """Worst sampled cost ratio (the PoA estimate)."""
        return max(self.ratios)

    @property
    def mean(self) -> float:
        """Average sampled cost ratio (the price of stability side)."""
        return float(np.mean(self.ratios))


def sample_price_of_anarchy(
    game: Game,
    finals: List[Network],
    optimum: Optional[float] = None,
) -> PoASample:
    """Ratio of converged states' social cost to a reference optimum.

    When ``optimum`` is omitted the star's social cost is used as the
    reference (exact for trees under SUM; a good proxy otherwise).
    """
    if not finals:
        raise ValueError("no final networks given")
    n = finals[0].n
    if optimum is None:
        optimum = star_social_cost(
            n, game.mode.value, alpha=game.alpha, owner_pays=game.alpha > 0
        )
    ratios = [social_cost(game, f) / optimum for f in finals]
    return PoASample(ratios)
