"""Aggregation of convergence-time measurements.

The paper reports, per configuration, the *average* and *maximum*
number of steps until convergence over many random trials (Figures 7,
8, 11–14).  :class:`ConvergenceStats` is the container both the
experiment runner and the benches use.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Sequence

import numpy as np

__all__ = ["ConvergenceStats"]


@dataclass
class ConvergenceStats:
    """Step counts of a batch of runs for one configuration."""

    steps: List[int] = field(default_factory=list)
    non_converged: int = 0

    def add(self, steps: int, converged: bool) -> None:
        """Record one run's outcome."""
        if converged:
            self.steps.append(int(steps))
        else:
            self.non_converged += 1

    @property
    def trials(self) -> int:
        """Total runs recorded (converged or not)."""
        return len(self.steps) + self.non_converged

    @property
    def mean(self) -> float:
        """Mean steps over converged runs (NaN when empty)."""
        return float(np.mean(self.steps)) if self.steps else float("nan")

    @property
    def max(self) -> int:
        """Worst converged run (0 when empty)."""
        return max(self.steps) if self.steps else 0

    @property
    def min(self) -> int:
        """Best converged run (0 when empty)."""
        return min(self.steps) if self.steps else 0

    def percentile(self, q: float) -> float:
        """q-th percentile of converged step counts."""
        return float(np.percentile(self.steps, q)) if self.steps else float("nan")

    def as_dict(self) -> Dict[str, float]:
        """Plain-dict summary for JSON reports."""
        return {
            "trials": self.trials,
            "mean": self.mean,
            "max": self.max,
            "min": self.min,
            "p95": self.percentile(95),
            "non_converged": self.non_converged,
        }

    def __repr__(self) -> str:  # pragma: no cover
        return (
            f"ConvergenceStats(trials={self.trials}, mean={self.mean:.1f}, "
            f"max={self.max}, non_converged={self.non_converged})"
        )
