"""Equilibrium analysis: stability, social cost, statistics, trajectories."""

from . import equilibria, social, stats, trajectories  # noqa: F401

__all__ = ["equilibria", "social", "stats", "trajectories"]
