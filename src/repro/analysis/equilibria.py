"""Stability notions and structural facts about stable networks.

* :func:`is_stable` — pure Nash stability for any game type (no agent
  has an admissible improving move).
* :func:`is_greedy_stable` — greedy-equilibrium stability (Lenzner,
  *Greedy Selfish Network Creation*): no agent has an improving
  *single-edge* deviation.  NE ⊆ GE for every game; the notions
  coincide exactly for games whose full move set is single-edge
  (SG/ASG/GBG), so the interesting gap lives in the BG and the
  bilateral game.
* :func:`is_pairwise_stable` — the bilateral game's solution concept
  (Corbo & Parkes): no agent wants to *delete* an incident edge, and no
  non-adjacent pair would *both* (weakly, one strictly) gain from adding
  their edge.
* :func:`stable_tree_shape` — Alon et al.'s classification used
  throughout Section 2: stable trees of the MAX-SG are stars or double
  stars (diameter <= 3); the SUM-SG's stable trees are stars
  (diameter <= 2).
"""

from __future__ import annotations

from typing import List, Optional, Tuple

import numpy as np

from ..core.games import EPS, BilateralGame, Game
from ..core.network import Network
from ..graphs import adjacency as adj
from ..graphs.properties import is_double_star, is_star, is_tree

__all__ = [
    "is_stable",
    "is_greedy_stable",
    "unhappy_agents",
    "greedy_unhappy_agents",
    "is_pairwise_stable",
    "stable_tree_shape",
    "equilibrium_census",
    "greedy_equilibrium_census",
]


def is_stable(game: Game, net: Network) -> bool:
    """Pure Nash stability: no agent has an admissible improving move."""
    return game.is_stable(net)


def is_greedy_stable(game: Game, net: Network) -> bool:
    """Greedy-equilibrium stability: no agent has an improving
    single-edge deviation (buy one / delete one owned / swap one edge).

    Every pure NE is a GE; the converse holds exactly for games whose
    move set is already single-edge (``game.moves_are_greedy()``).
    """
    return game.is_greedy_stable(net)


def unhappy_agents(game: Game, net: Network) -> List[int]:
    """Agents with at least one admissible improving move."""
    return game.unhappy_agents(net)


def greedy_unhappy_agents(game: Game, net: Network) -> List[int]:
    """Agents with at least one improving single-edge deviation."""
    return game.greedy_unhappy_agents(net)


def is_pairwise_stable(game: BilateralGame, net: Network) -> Tuple[bool, Optional[str]]:
    """Pairwise stability for the bilateral equal-split game.

    Conditions:

    1. no agent strictly gains by deleting one incident edge
       (deletions are unilateral);
    2. no absent edge ``{u, v}`` exists such that adding it strictly
       helps one endpoint and does not hurt the other.

    Returns ``(stable, witness)`` where ``witness`` describes the first
    violated condition.
    """
    n = net.n
    base = [game.current_cost(net, u) for u in range(n)]
    # deletions
    for u in range(n):
        for v in net.neighbors(u):
            work = net.copy()
            work.remove_edge(u, int(v))
            if game.current_cost(work, u) < base[u] - EPS:
                return False, f"{net.label(u)} gains by deleting {{{net.label(u)},{net.label(int(v))}}}"
    # additions (bilateral consent)
    for u in range(n):
        for v in range(u + 1, n):
            if net.A[u, v]:
                continue
            if game.host is not None and not game.host[u, v]:
                continue
            work = net.copy()
            work.add_edge(u, v)
            cu, cv = game.current_cost(work, u), game.current_cost(work, v)
            better_u, better_v = cu < base[u] - EPS, cv < base[v] - EPS
            nohurt_u, nohurt_v = cu <= base[u] + EPS, cv <= base[v] + EPS
            if (better_u and nohurt_v) or (better_v and nohurt_u):
                return False, f"edge {{{net.label(u)},{net.label(v)}}} is mutually beneficial"
    return True, None


def equilibrium_census(
    game: Game,
    n: Optional[int] = None,
    start: Optional[Network] = None,
    **kwargs,
):
    """All pure Nash equilibria of a game's configuration space.

    A thin analysis-layer front for the statespace explorer
    (:func:`repro.statespace.explore.explore`): pass ``n`` for the
    exhaustive census over every connected configuration, or ``start``
    for the reachable component of one network.  Returns
    ``(equilibria, report)`` where ``equilibria`` is the list of stable
    networks (decoded, in the report's sorted-digest order) and
    ``report`` the full :class:`~repro.statespace.explore.ExplorationReport`
    (cycles, basin sizes, longest improving path).

    The explorer's sinks are cross-checked against the brute-force
    stability oracle of the requested moveset before returning — this
    function never hands back a census the oracle disagrees with.  Pass
    ``moves="greedy"`` for the greedy-equilibrium census (or use
    :func:`greedy_equilibrium_census`); either way the returned report
    carries *both* notions when computable — ``report.equilibria`` are
    the sinks of the requested dynamics and ``report.greedy_equilibria``
    the GE set, so the GE-vs-NE comparison is one census call.
    """
    from ..statespace.explore import explore, verify_sinks

    report = explore(game, start=start, n=n, **kwargs)
    verify_sinks(report, game)
    graph = report.graph
    nets = [graph.network(graph.index[bytes.fromhex(h)]) for h in report.equilibria]
    return nets, report


def greedy_equilibrium_census(
    game: Game,
    n: Optional[int] = None,
    start: Optional[Network] = None,
    **kwargs,
):
    """All greedy equilibria of a game's configuration space.

    :func:`equilibrium_census` under the ``greedy`` moveset: the
    explorer expands improving single-edge deviations only, so sinks
    are exactly the GE, cross-checked against the brute-force
    :func:`is_greedy_stable` scan.  Returns ``(equilibria, report)``
    like :func:`equilibrium_census`.
    """
    return equilibrium_census(game, n=n, start=start, moves="greedy", **kwargs)


def stable_tree_shape(net: Network) -> str:
    """Classify a tree as ``'star' | 'double-star' | 'other'``.

    Alon et al. (SPAA'10): the MAX-SG's stable trees are exactly stars
    and double stars; the SUM-SG's are stars.  The tree-dynamics tests
    assert every converged tree lands in the right class.
    """
    if not is_tree(net.A):
        return "not-a-tree"
    if is_star(net.A):
        return "star"
    if is_double_star(net.A):
        return "double-star"
    return "other"
