#!/usr/bin/env python
"""A guided tour of every counterexample in the paper.

Walks through the best-response cycles of Figures 2, 3, 5, 6, 9, 10, 15
and 16, printing each state's unhappy agents and each move with its cost
decrease, and re-verifying the cycle with the machine checker.

Usage::

    python examples/br_cycles_tour.py [figure ...]   # default: all
"""

import sys

from repro.instances.figures import ALL_INSTANCES
from repro.instances.verify import verify_instance


def tour(name: str) -> None:
    inst = ALL_INSTANCES[name]()
    game = inst.game
    print("=" * 72)
    print(f"{name}: {inst.theorem}   [{type(game).__name__}, mode={game.mode.value}"
          + (f", alpha={game.alpha}" if game.alpha else "") + "]")
    print(f"  {inst.notes}")
    net = inst.network.copy()
    print(f"  initial network ({net.n} agents, {net.m} edges): {net.describe()}")
    for i, (agent, move) in enumerate(inst.moves()):
        unhappy = [net.label(u) for u in game.unhappy_agents(net)]
        before = game.current_cost(net, agent)
        move.apply(net)
        after = game.current_cost(net, agent)
        print(f"  state {i}: unhappy={unhappy}")
        print(f"    -> {move.describe(net)}   cost {before:g} -> {after:g} "
              f"(saves {before - after:g})")
    closes = "exactly" if net.state_key(False) == inst.network.state_key(False) else \
        "up to isomorphism"
    print(f"  the cycle closes {closes} after {len(inst.cycle)} moves")
    rep = verify_instance(inst)
    print(f"  machine verification: {'OK' if rep.ok else 'FAILED'}")


def main(names) -> None:
    if not names:
        names = list(ALL_INSTANCES)
    for name in names:
        tour(name)
    print("=" * 72)
    print("All requested cycles verified: distributed local search has no")
    print("convergence guarantee in any of these game variants.")


if __name__ == "__main__":
    main(sys.argv[1:])
