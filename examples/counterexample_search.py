#!/usr/bin/env python
"""The counterexample search engine, live.

The paper's Figures 2, 5 and 6 are drawings whose prose descriptions
under-determine the exact graphs.  This script reruns the searches that
reconstructed them:

1. all 9-agent rotation-symmetric MAX-SG instances with a one-unhappy-
   agent best-response cycle (Figure 2's family);
2. the unit-budget templates of Figures 5/6, with the found cycles
   replayed and re-verified.

Usage::

    python examples/counterexample_search.py [--all-fig2]
"""

import sys
import time

from repro.graphs import adjacency as adj
from repro.instances.search import (
    search_rotation_symmetric_sg_cycle,
    search_unit_budget_cycle_max,
    search_unit_budget_cycle_sum,
)


def main(show_all_fig2: bool = False) -> None:
    print("=== Figure 2 family: rotation-symmetric MAX-SG cycles ===")
    t0 = time.time()
    found = search_rotation_symmetric_sg_cycle(limit=None if show_all_fig2 else 3)
    print(f"{len(found)} instances found in {time.time() - t0:.1f}s "
          "(9 agents, exactly one unhappy agent in every state)")
    for fc in found[:3]:
        ecc = adj.eccentricities(fc.initial.A)
        profile = {fc.initial.label(v): int(ecc[v]) for v in range(9)}
        print(f"  {fc.initial.m} edges, eccentricities {profile}")

    print("\n=== Figure 5 family: SUM-ASG, every agent owns one edge ===")
    t0 = time.time()
    found5 = search_unit_budget_cycle_sum(limit=1)
    print(f"found in {time.time() - t0:.1f}s: {found5[0].notes}")
    st = found5[0].initial.copy()
    for agent, move in found5[0].moves:
        print("   ", move.describe(st))

    print("\n=== Figure 6 family: MAX-ASG, every agent owns one edge ===")
    t0 = time.time()
    found6 = search_unit_budget_cycle_max(limit=1)
    print(f"found in {time.time() - t0:.1f}s: {found6[0].notes}")
    st = found6[0].initial.copy()
    for agent, move in found6[0].moves:
        print("   ", move.describe(st))

    print("\nBoth unit-budget cycles answer Ehsani et al.'s open problem in")
    print("the negative: even identical agents with budget one may cycle.")


if __name__ == "__main__":
    main("--all-fig2" in sys.argv[1:])
