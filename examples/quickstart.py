#!/usr/bin/env python
"""Quickstart: run selfish network creation dynamics to convergence.

Builds a random bounded-budget network (every agent owns exactly two
edges), runs the SUM Asymmetric Swap Game under the paper's max cost
policy, and inspects the outcome: step count, the move trace, the final
stable network, and the social cost before/after.

Usage::

    python examples/quickstart.py [n] [budget] [seed]
"""

import sys

from repro import (
    AsymmetricSwapGame,
    MaxCostPolicy,
    random_budget_network,
    run_dynamics,
    social_cost,
)
from repro.core.costs import DistanceMode
from repro.graphs import adjacency as adj


def main(n: int = 30, budget: int = 2, seed: int = 7) -> None:
    net = random_budget_network(n, budget, seed=seed)
    game = AsymmetricSwapGame("sum")

    print(f"initial network: n={net.n}, m={net.m}, "
          f"diameter={adj.diameter(net.A):.0f}, "
          f"social distance cost={game.social_cost(net):.0f}")

    result = run_dynamics(game, net, MaxCostPolicy(), seed=seed)

    print(f"\ndynamics: {result.status} after {result.steps} steps "
          f"(paper's empirical envelope: 5n = {5 * n})")
    print("first five moves:")
    for rec in result.trajectory[:5]:
        print(f"  step {rec.step:3d}: {rec.move.describe(result.final)}   "
              f"cost {rec.cost_before:.0f} -> {rec.cost_after:.0f}")

    final = result.final
    print(f"\nstable network: diameter={adj.diameter(final.A):.0f}, "
          f"social distance cost={game.social_cost(final):.0f}")
    assert game.is_stable(final), "converged state must be a pure Nash equilibrium"
    print("verified: no agent has an improving move (pure Nash equilibrium).")


if __name__ == "__main__":
    args = [int(a) for a in sys.argv[1:4]]
    main(*args)
