#!/usr/bin/env python
"""Quickstart: run selfish network creation dynamics to convergence.

Two layers of the same API:

1. the **core layer** — build a game/network/policy by hand and call
   ``run_dynamics`` (full control, used by the theory tests);
2. the **scenario layer** — declare the whole experiment as a
   registry-validated :class:`repro.ScenarioSpec`, run it with one
   call, and get a metrics record back.  The spec is JSON
   round-trippable, so the exact same object drives ``repro run``,
   ``repro experiment`` and the durable ``repro campaign`` store.

Usage::

    python examples/quickstart.py [n] [budget] [seed]
"""

import sys

from repro import (
    AsymmetricSwapGame,
    MaxCostPolicy,
    ScenarioSpec,
    random_budget_network,
    run_dynamics,
)
from repro.experiments.runner import run_scenario
from repro.graphs import adjacency as adj


def core_layer(n: int, budget: int, seed: int) -> None:
    """The hand-assembled run: explicit game, network, policy."""
    net = random_budget_network(n, budget, seed=seed)
    game = AsymmetricSwapGame("sum")

    print(f"initial network: n={net.n}, m={net.m}, "
          f"diameter={adj.diameter(net.A):.0f}, "
          f"social distance cost={game.social_cost(net):.0f}")

    result = run_dynamics(game, net, MaxCostPolicy(), seed=seed)

    print(f"\ndynamics: {result.status} after {result.steps} steps "
          f"(paper's empirical envelope: 5n = {5 * n})")
    print("first five moves:")
    for rec in result.trajectory[:5]:
        print(f"  step {rec.step:3d}: {rec.move.describe(result.final)}   "
              f"cost {rec.cost_before:.0f} -> {rec.cost_after:.0f}")

    final = result.final
    print(f"\nstable network: diameter={adj.diameter(final.A):.0f}, "
          f"social distance cost={game.social_cost(final):.0f}")
    assert game.is_stable(final), "converged state must be a pure Nash equilibrium"
    print("verified: no agent has an improving move (pure Nash equilibrium).")


def scenario_layer(n: int, budget: int, seed: int) -> None:
    """The same experiment — and one the legacy API could not express —
    as declarative, serializable scenario specs."""
    spec = ScenarioSpec(
        game="asg",
        game_params={"mode": "sum"},
        policy="maxcost",
        topology="budget",
        topology_params={"budget": budget},
        metrics=("steps", "status", "social_cost", "diameter", "cost_ratio"),
    )
    record, _ = run_scenario(spec, n, seed=seed)
    print(f"\nscenario {spec.game}/{spec.policy}/{spec.dynamics}/{spec.topology}: "
          f"{record.status} after {record.steps} steps")
    for name, value in record.extra_metrics().items():
        print(f"  {name} = {value:.2f}" if isinstance(value, float)
              else f"  {name} = {value}")

    # the spec is plain JSON — ship it to a campaign, a worker, a file
    assert ScenarioSpec.from_json_str(spec.json_str()) == spec

    # beyond the legacy surface: simultaneous rounds, noisy best
    # response, tree start — one field each
    novel = spec.with_(
        game="gbg", game_params={"mode": "sum", "alpha": "n/4"},
        policy="noisy", policy_params={"epsilon": 0.1},
        dynamics="simultaneous", topology="tree", topology_params={},
        metrics=("steps", "status", "rounds", "social_cost"),
    )
    record, _ = run_scenario(novel, n, seed=seed)
    print(f"novel scenario {novel.game}/{novel.policy}/{novel.dynamics}/"
          f"{novel.topology}: {record.status} after {record.steps} steps "
          f"in {record.rounds} rounds, "
          f"social cost {record.metrics['social_cost']:.0f}")


def statespace_layer() -> None:
    """The exhaustive census: every SG equilibrium at n = 4.

    Where the core layer samples one trajectory, the statespace layer
    enumerates the *whole* best-response transition system: all 38
    connected 4-vertex graphs, their transitions, sinks and basins.
    """
    from repro import SwapGame, decode_state, explore, verify_sinks

    game = SwapGame("sum")
    report = explore(game, n=4)
    verify_sinks(report, game)  # census == brute-force is_stable scan
    print(f"\nSG/sum n=4 census: {report.n_states} states, "
          f"{report.n_equilibria} equilibria, "
          f"longest improving path {report.longest_improving_path}")
    first = report.equilibria[0]
    idx = report.graph.index[bytes.fromhex(first)]
    print(f"  e.g. stable: {decode_state(report.graph.blobs[idx]).describe()} "
          f"(basin {report.basin_sizes[first]})")


def greedy_equilibrium_layer() -> None:
    """Greedy equilibria: stability against single-edge deviations.

    Every Nash equilibrium is a greedy equilibrium, but not vice versa:
    for the Buy Game at alpha = 2, n = 4 there are states no single
    edge-change improves that a multi-edge strategy rewrite does.  The
    ``moves="greedy"`` census walks exactly Lenzner's greedy dynamics.
    """
    from repro import BuyGame, explore, verify_sinks

    game = BuyGame("sum", alpha=2.0)
    best = explore(game, n=4)                      # NE census (+ GE scan)
    greedy = explore(game, n=4, moves="greedy")    # GE census
    verify_sinks(greedy, game)  # sinks == brute-force is_greedy_stable
    ne, ge = set(best.equilibria), set(greedy.equilibria)
    print(f"\nBG/sum alpha=2 n=4: {len(ne)} Nash equilibria inside "
          f"{len(ge)} greedy equilibria "
          f"({len(ge - ne)} states only single-edge stable)")
    assert ne < ge, "NE must sit strictly inside GE here"


def service_layer(budget: int, seed: int) -> None:
    """Simulation-as-a-service: the same campaign, but submitted to a
    live job server and watched over a websocket.

    ``ServiceThread`` runs the real asyncio server (the one behind
    ``repro serve``) on an ephemeral port; the client submits a
    registry-validated spec, streams every trial record as the worker
    writes it — byte-identical to a direct run — and fetches the final
    aggregate.
    """
    import tempfile

    from repro import ServiceConfig, ServiceThread

    spec = {"game": {"name": "asg", "params": {"mode": "sum"}},
            "topology": {"name": "budget", "params": {"budget": budget}}}
    config = ServiceConfig(state_dir=tempfile.mkdtemp(prefix="quickstart-svc-"),
                           workers=1)
    with ServiceThread(config) as svc:
        client = svc.client(token="quickstart")
        job = client.submit({"kind": "trial", "spec": spec,
                             "n": 12, "trials": 3, "seed": seed})
        print(f"\nservice job {job['id']}: submitted as {job['state']}")
        records = [item for kind, item in client.stream(job["id"])
                   if kind == "record"]
        print(f"  streamed {len(records)} trial records live, e.g. {records[0]}")
        result = client.result(job["id"])["result"]
        print(f"  final aggregate over {result['total']} trials fetched")


def observability_layer(n: int, budget: int, seed: int) -> None:
    """Telemetry riding along with a run: tracing spans + the meter.

    Everything below is permanently compiled into the dynamics, the
    distance backends and the explorer — ``configure_tracing`` merely
    switches where spans go, and the meter counts whenever ``REPRO_OBS``
    isn't 0.  The same snapshot renders as a Prometheus page on the
    service's ``GET /metrics`` and as the ``repro top`` console.
    """
    import tempfile
    from pathlib import Path

    from repro import (
        configure_tracing,
        encode_prometheus,
        run_dynamics,
        span,
        summarize_trace,
    )
    from repro.obs.metrics import DEFAULT

    trace_path = Path(tempfile.mkdtemp(prefix="quickstart-obs-")) / "trace.jsonl"
    configure_tracing(trace_path)
    before = DEFAULT.snapshot()
    try:
        with span("quickstart.observability", n=n):
            net = random_budget_network(n, budget, seed=seed)
            run_dynamics(AsymmetricSwapGame("sum"), net,
                         MaxCostPolicy(), seed=seed)
    finally:
        configure_tracing(None)

    summary = summarize_trace(trace_path)
    print(f"\ntraced {summary['total_events']} spans "
          f"(also: repro trace summarize {trace_path}):")
    for name, row in summary["spans"].items():
        print(f"  {name}: count={row['count']} total={row['total_s']:.3f}s")

    from repro.obs.metrics import diff_snapshots
    delta = diff_snapshots(DEFAULT.snapshot(), before)
    page = encode_prometheus(delta)
    sample = [l for l in page.splitlines()
              if l.startswith("repro_dynamics_runs_total")]
    print("metrics the run accrued (Prometheus text, as on GET /metrics):")
    for line in sample:
        print(f"  {line}")


def main(n: int = 30, budget: int = 2, seed: int = 7) -> None:
    core_layer(n, budget, seed)
    scenario_layer(n, budget, seed)
    statespace_layer()
    greedy_equilibrium_layer()
    service_layer(budget, seed)
    observability_layer(n, budget, seed)


if __name__ == "__main__":
    args = [int(a) for a in sys.argv[1:4]]
    main(*args)
