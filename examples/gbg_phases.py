#!/usr/bin/env python
"""Phase structure of Greedy Buy Game trajectories (Section 4.2.2).

The paper describes typical SUM-GBG runs on dense starts as three
phases: mostly deletions, then swaps with some buys, then cleanup.
This script prints the operation mix per trajectory third and an
operation timeline for a sample run.

Usage::

    python examples/gbg_phases.py [n] [m_factor] [seed]
"""

import sys

from repro.experiments.gbg import move_mix_trajectory, phase_summary

GLYPH = {"delete": "-", "swap": "~", "buy": "+", "multi": "*"}


def main(n: int = 40, m_factor: int = 4, seed: int = 1) -> None:
    kinds = move_mix_trajectory(n, m_factor=m_factor, alpha_factor=0.25, seed=seed)
    summary = phase_summary(kinds)

    print(f"SUM-GBG sample run: n={n}, m={m_factor}n, alpha=n/4, random policy")
    print(f"converged after {len(kinds)} steps\n")
    print("operation timeline ('-' delete, '~' swap, '+' buy):")
    line = "".join(GLYPH[k] for k in kinds)
    for i in range(0, len(line), 72):
        print("  " + line[i : i + 72])

    print("\noperation mix per trajectory third:")
    for phase in ("early", "middle", "late"):
        counts = getattr(summary, phase)
        total = sum(counts.values()) or 1
        mix = ", ".join(f"{k}: {v} ({100*v/total:.0f}%)" for k, v in counts.most_common())
        print(f"  {phase:<7} {mix}")
    print(f"\ndominant early operation: {summary.dominant('early')} "
          "(the paper's 'first there is a phase with mostly deletions')")


if __name__ == "__main__":
    main(*(int(a) for a in sys.argv[1:4]))
