#!/usr/bin/env python
"""The full empirical study of Sections 3.4 and 4.2 (Figures 7-14).

Runs the figure grids and prints the series tables the paper plots.
The default scale finishes in a few minutes; ``--full`` switches to the
paper's grid (n = 10..100 and thousands of trials — hours of compute).

Usage::

    python examples/empirical_study.py [fig7|fig8|fig11|fig12|fig13|fig14 ...]
        [--trials T] [--n 10,20,30] [--jobs J] [--full]
"""

import argparse

from repro.experiments.asg_budget import figure7_spec, figure8_spec
from repro.experiments.gbg import figure11_spec, figure13_spec
from repro.experiments.report import format_figure
from repro.experiments.runner import run_figure
from repro.experiments.topology import figure12_spec, figure14_spec

SPECS = {
    "fig7": figure7_spec,
    "fig8": figure8_spec,
    "fig11": figure11_spec,
    "fig12": figure12_spec,
    "fig13": figure13_spec,
    "fig14": figure14_spec,
}


def main() -> None:
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("figures", nargs="*", default=[], help="subset of figures to run")
    ap.add_argument("--trials", type=int, default=None)
    ap.add_argument("--n", type=str, default=None, help="comma-separated n values")
    ap.add_argument("--jobs", type=int, default=None,
                    help="worker processes (default: all cores for big cells)")
    ap.add_argument("--seed", type=int, default=0)
    ap.add_argument("--full", action="store_true", help="paper-scale grid")
    args = ap.parse_args()

    names = args.figures or list(SPECS)
    n_values = [int(x) for x in args.n.split(",")] if args.n else None
    for name in names:
        spec = SPECS[name]()
        if args.full:
            spec = spec.paper_scale()
        result = run_figure(
            spec, seed=args.seed, n_jobs=args.jobs,
            trials=args.trials, n_values=n_values,
        )
        print()
        print(format_figure(result, "mean"))
        print()
        print(format_figure(result, "max"))


if __name__ == "__main__":
    main()
