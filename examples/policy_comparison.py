#!/usr/bin/env python
"""Move-policy comparison: does coordination help?

Compares the max cost policy against the random policy (and round-robin
as an extra baseline) on the bounded-budget SUM/MAX-ASG — the paper's
Figures 7/8 finding: coordination helps under SUM, barely matters under
MAX.

Usage::

    python examples/policy_comparison.py [n] [trials]
"""

import sys

import numpy as np

from repro.analysis.stats import ConvergenceStats
from repro.core.dynamics import run_dynamics
from repro.core.games import AsymmetricSwapGame
from repro.core.policies import MaxCostPolicy, RandomPolicy, RoundRobinPolicy
from repro.graphs.generators import random_budget_network

POLICIES = {
    "max cost": MaxCostPolicy,
    "random": RandomPolicy,
    "round-robin": RoundRobinPolicy,
}


def main(n: int = 30, trials: int = 25) -> None:
    for mode in ("sum", "max"):
        game = AsymmetricSwapGame(mode)
        print(f"\n{mode.upper()}-ASG, budget k=2, n={n}, {trials} trials")
        print(f"{'policy':<12} {'mean':>7} {'max':>5} {'p95':>7}")
        for name, ctor in POLICIES.items():
            stats = ConvergenceStats()
            for seed in range(trials):
                net = random_budget_network(n, 2, seed=seed)
                res = run_dynamics(
                    game, net, ctor(), seed=seed, max_steps=50 * n,
                    record_trajectory=False,
                )
                stats.add(res.steps, res.converged)
            print(f"{name:<12} {stats.mean:>7.1f} {stats.max:>5d} "
                  f"{stats.percentile(95):>7.1f}")
    print("\nPaper's reading: under SUM the max cost policy is faster; under")
    print("MAX the policies are nearly indistinguishable (most agents share")
    print("the maximum cost, so 'max cost' is almost a uniform choice).")


if __name__ == "__main__":
    main(*(int(a) for a in sys.argv[1:3]))
