#!/usr/bin/env python
"""The positive side: guaranteed convergence on trees (Section 2).

* runs the MAX Swap Game on random trees and on the path, checking the
  sorted-cost-vector potential of Lemma 2.6 at every step;
* shows the Theta(n log n) speed-up of the max cost policy
  (Theorem 2.11) against the measured series M(P_n);
* prints the shape of every stable tree reached (always a star or a
  double star, as Alon et al. proved).

Usage::

    python examples/tree_convergence.py [max_n]
"""

import sys

from repro.analysis.equilibria import stable_tree_shape
from repro.core.games import SwapGame
from repro.core.policies import RandomPolicy
from repro.graphs.generators import random_tree_network
from repro.theory.bounds import max_sg_tree_bound, nlogn
from repro.theory.tree_dynamics import path_lower_bound_run, run_tree_dynamics


def main(max_n: int = 33) -> None:
    print("MAX-SG on random trees (random policy, potential checked each step)")
    print(f"{'n':>4} {'steps':>6} {'O(n^3) bound':>13} {'potential':>10} {'final':>12}")
    for n in (9, 13, 17, 25):
        if n > max_n:
            break
        net = random_tree_network(n, seed=n)
        rep = run_tree_dynamics(SwapGame("max"), net, RandomPolicy(), seed=n)
        shape = stable_tree_shape(rep.result.final)
        print(f"{n:>4} {rep.steps:>6} {max_sg_tree_bound(n):>13.0f} "
              f"{'ok' if rep.potential_ok else 'VIOLATED':>10} {shape:>12}")

    print("\nTheorem 2.11: the max cost policy on the path P_n")
    print(f"{'n':>4} {'M(Pn)':>6} {'n log2 n':>9}")
    for n in (9, 17, 33):
        if n > max_n:
            break
        rep = path_lower_bound_run(n)
        print(f"{n:>4} {rep.steps:>6} {nlogn(n):>9.1f}")
    print("\nM(P_n) grows like n log n — far below the adversarial O(n^3).")


if __name__ == "__main__":
    main(*(int(a) for a in sys.argv[1:2]))
