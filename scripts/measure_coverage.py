#!/usr/bin/env python
"""Dependency-free line-coverage gate for the tier-1 suite.

Usage::

    PYTHONPATH=src python scripts/measure_coverage.py [--fail-under PCT]
                                                      [--report N]
                                                      [pytest args...]

Runs pytest *in-process* under a ``sys.settrace`` hook that records
executed lines of every module below ``src/repro`` (frames of foreign
code are not line-traced, which keeps the overhead tolerable).  The
denominator is the set of executable lines obtained by compiling each
source file and walking its code objects' ``co_lines`` tables — the
same universe ``coverage.py`` uses, minus its exclusion pragmas.

The offline toolchain has no ``coverage``/``pytest-cov``; this script
is the measurement CI gates on (``--fail-under``), so the number in
``.github/workflows/ci.yml`` and the number a developer reproduces
locally come from the same code path.

Exit status: 0 on success, 2 when below ``--fail-under``, pytest's own
status when the suite itself fails.
"""

from __future__ import annotations

import argparse
import os
import sys
import threading
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
SRC_ROOT = REPO_ROOT / "src" / "repro"


def executable_lines(path: Path) -> set:
    """All line numbers the compiler emits code for in ``path``."""
    try:
        code = compile(path.read_text(), str(path), "exec")
    except SyntaxError:
        return set()
    lines = set()
    stack = [code]
    while stack:
        obj = stack.pop()
        lines.update(ln for _, _, ln in obj.co_lines() if ln is not None)
        for const in obj.co_consts:
            if hasattr(const, "co_lines"):
                stack.append(const)
    return lines


def collect_universe() -> dict:
    """``resolved filename -> executable line set`` for src/repro."""
    return {
        str(path.resolve()): executable_lines(path)
        for path in sorted(SRC_ROOT.rglob("*.py"))
    }


class LineCollector:
    """A settrace hook that only line-traces frames from src/repro."""

    def __init__(self, universe: dict) -> None:
        self.universe = universe
        self.hits = {fn: set() for fn in universe}

    def global_trace(self, frame, event, arg):
        if event != "call":
            return None
        hits = self.hits.get(frame.f_code.co_filename)
        if hits is None:
            return None  # foreign frame: skip line events entirely

        def local_trace(frame, event, arg):
            if event == "line":
                hits.add(frame.f_lineno)
            return local_trace

        hits.add(frame.f_lineno)
        return local_trace

    def install(self) -> None:
        threading.settrace(self.global_trace)
        sys.settrace(self.global_trace)

    def uninstall(self) -> None:
        sys.settrace(None)
        threading.settrace(None)


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--fail-under", type=float, default=None, metavar="PCT",
                        help="exit 2 when total coverage is below PCT")
    parser.add_argument("--report", type=int, default=10, metavar="N",
                        help="show the N least-covered files (0: none)")
    parser.add_argument("pytest_args", nargs="*",
                        help="arguments forwarded to pytest (default: -q -p no:cacheprovider)")
    # parse_known_args so dash-prefixed pytest flags (e.g. `-q`, `-k
    # expr`) pass through without needing a `--` separator
    args, extra = parser.parse_known_args(argv)
    args.pytest_args += extra

    sys.path.insert(0, str(REPO_ROOT / "src"))
    os.environ.setdefault("REPRO_N_JOBS", "1")  # child processes are untraced
    import pytest

    universe = collect_universe()
    collector = LineCollector(universe)
    pytest_args = args.pytest_args or ["-q", "-p", "no:cacheprovider"]

    collector.install()
    try:
        exit_code = pytest.main(pytest_args)
    finally:
        collector.uninstall()
    if exit_code != 0:
        print(f"pytest failed (exit {exit_code}); coverage not evaluated")
        return int(exit_code)

    rows = []
    total_exec = total_hit = 0
    for fn, lines in sorted(universe.items()):
        if not lines:
            continue
        hit = len(collector.hits[fn] & lines)
        total_exec += len(lines)
        total_hit += hit
        rows.append((100.0 * hit / len(lines), hit, len(lines), fn))
    pct = 100.0 * total_hit / total_exec if total_exec else 100.0

    if args.report:
        print(f"\n{'cover':>7}  {'lines':>11}  file  (least-covered {args.report})")
        for cover, hit, n, fn in sorted(rows)[: args.report]:
            rel = os.path.relpath(fn, REPO_ROOT)
            print(f"{cover:6.1f}%  {hit:5d}/{n:<5d}  {rel}")
    print(f"\nTOTAL line coverage: {pct:.2f}% ({total_hit}/{total_exec} lines, "
          f"{len(rows)} files)")

    if args.fail_under is not None and pct < args.fail_under:
        print(f"FAIL: coverage {pct:.2f}% is below the gate of {args.fail_under:.2f}%")
        return 2
    return 0


if __name__ == "__main__":
    sys.exit(main())
