"""End-to-end smoke of ``repro serve``: the real server, real sockets.

Four phases, all against a subprocess running ``python -m repro serve``:

1. trajectory job — submit an SG campaign, stream it over the
   websocket, and require the streamed records to be *byte-identical*
   to running the same spec directly through ``run_campaign``;
2. explore job — same contract against a direct ``explore`` run;
3. kill/restart — SIGKILL the server mid-job, restart it on the same
   state directory, and require the job to resume and finish with
   exactly ``trials`` records (nothing lost, nothing recomputed);
4. drain — SIGTERM must exit 0 after requeueing in-flight work.

Exits non-zero on the first violated invariant.  Used by CI; run
locally with ``PYTHONPATH=src python scripts/service_smoke.py``.
"""

import json
import os
import pathlib
import re
import signal
import subprocess
import sys
import tempfile
import time

_SRC = pathlib.Path(__file__).resolve().parent.parent / "src"
sys.path.insert(0, str(_SRC))

from repro.experiments.campaign import run_campaign  # noqa: E402
from repro.registry import REGISTRY  # noqa: E402
from repro.service.client import ServiceClient  # noqa: E402
from repro.service.jobs import parse_job_request, _grid_for  # noqa: E402
from repro.statespace.explore import explore  # noqa: E402
from repro.statespace.store import ExplorationStore  # noqa: E402

SPEC = {"game": {"name": "sg", "params": {"mode": "sum"}},
        "topology": {"name": "budget", "params": {"budget": 2}}}
TRIAL_PAYLOAD = {"kind": "trial", "spec": SPEC, "n": 10, "trials": 4, "seed": 7}
EXPLORE_PAYLOAD = {"kind": "explore", "spec": SPEC, "n": 4}

BANNER = re.compile(r"repro\.service listening on [\d.]+:(\d+)")


def start_server(state_dir: pathlib.Path) -> subprocess.Popen:
    env = dict(os.environ)
    env["PYTHONPATH"] = str(_SRC) + os.pathsep + env.get("PYTHONPATH", "")
    proc = subprocess.Popen(
        [sys.executable, "-u", "-m", "repro", "serve", "--port", "0",
         "--workers", "1", "--state-dir", str(state_dir)],
        stdout=subprocess.PIPE, stderr=subprocess.STDOUT, text=True, env=env,
        start_new_session=True)  # own process group: a "crash" kills workers too
    line = proc.stdout.readline()
    match = BANNER.search(line)
    if not match:
        proc.kill()
        raise SystemExit(f"no listening banner, got: {line!r}")
    proc.port = int(match.group(1))
    return proc


def stream_records(client: ServiceClient, job_id: str):
    records, events = [], []
    for kind, item in client.stream(job_id):
        (records if kind == "record" else events).append(item)
    return records, events


def store_lines(store_dir: pathlib.Path):
    lines = []
    for path in sorted(store_dir.glob("*.jsonl")):
        lines += [l for l in path.read_text().splitlines() if l]
    return lines


def check(condition, message):
    if not condition:
        raise SystemExit(f"SMOKE FAILED: {message}")
    print(f"  ok: {message}")


def phase_trajectory(client: ServiceClient, tmp: pathlib.Path):
    print("phase 1: trajectory job, byte-identity vs direct run_campaign")
    job = client.submit(TRIAL_PAYLOAD)
    records, events = stream_records(client, job["id"])
    check(events[-1]["event"] == "end" and events[-1]["state"] == "done",
          "stream ended with state=done")
    grid = _grid_for(parse_job_request(TRIAL_PAYLOAD), "direct")
    run_campaign(grid, tmp / "direct-trial", seed=TRIAL_PAYLOAD["seed"],
                 n_jobs=1)
    direct = store_lines(tmp / "direct-trial")
    check(sorted(records) == sorted(direct),
          f"{len(records)} streamed records byte-identical to direct run")
    result = client.result(job["id"])["result"]
    check(result["total"] == TRIAL_PAYLOAD["trials"], "result total matches")


def phase_explore(client: ServiceClient, tmp: pathlib.Path):
    print("phase 2: explore job, byte-identity vs direct explore")
    job = client.submit(EXPLORE_PAYLOAD)
    records, events = stream_records(client, job["id"])
    check(events[-1]["state"] == "done", "explore stream ended done")
    game = REGISTRY.build("game", "sg", {"mode": "sum"},
                          n=EXPLORE_PAYLOAD["n"])
    direct = ExplorationStore(tmp / "direct-explore")
    explore(game, n=EXPLORE_PAYLOAD["n"], store=direct, game_name="sg")
    check(sorted(records) == sorted(store_lines(direct.root)),
          f"{len(records)} streamed states byte-identical to direct explore")


def phase_kill_restart(state_dir: pathlib.Path, proc: subprocess.Popen):
    print("phase 3: SIGKILL the server mid-job, restart, resume")
    client = ServiceClient("127.0.0.1", proc.port)
    job = client.submit({**TRIAL_PAYLOAD, "n": 20, "trials": 40, "seed": 11})
    store = state_dir / "jobs" / job["id"] / "store"
    deadline = time.monotonic() + 60
    while not store_lines(store) and time.monotonic() < deadline:
        time.sleep(0.05)
    before = store_lines(store)
    check(before, "worker produced records before the kill")
    # SIGKILL the whole group — server and worker die together, exactly
    # like a machine crash; nothing survives to double-write the store
    os.killpg(os.getpgid(proc.pid), signal.SIGKILL)
    proc.wait()

    revived = start_server(state_dir)
    try:
        client = ServiceClient("127.0.0.1", revived.port)
        view = client.wait(job["id"], timeout=120)
        check(view["state"] == "done", "killed job resumed to done")
        after = store_lines(store)
        check(after[:len(before)] == before,
              "pre-kill records survived the restart verbatim")
        trials = [json.loads(l)["trial"] for l in after]
        check(len(trials) == len(set(trials)) == 40,
              "exactly 40 distinct trials: zero lost, zero recomputed")
    finally:
        revived.terminate()
        revived.wait(timeout=30)
    return revived.returncode


def main() -> int:
    tmp = pathlib.Path(tempfile.mkdtemp(prefix="service-smoke-"))
    state_dir = tmp / "state"
    proc = start_server(state_dir)
    try:
        client = ServiceClient("127.0.0.1", proc.port)
        phase_trajectory(client, tmp)
        phase_explore(client, tmp)
    except BaseException:
        proc.kill()
        raise
    rc = phase_kill_restart(state_dir, proc)
    check(rc == 0, "SIGTERM drain exited 0")
    print("phase 4: drain verified during restart teardown")
    print("service smoke: all phases passed")
    return 0


if __name__ == "__main__":
    signal.signal(signal.SIGALRM, lambda *a: sys.exit("smoke timed out"))
    signal.alarm(600)
    sys.exit(main())
