#!/usr/bin/env python
"""Regenerate the golden-trajectory fixtures under tests/golden/fixtures/.

Usage::

    PYTHONPATH=src python scripts/regen_golden.py [--check] [case ...]

Runs every case in :data:`tests.golden.cases.CASES` (or only the named
ones) on the *dense* backend — the equivalence oracle — and rewrites its
fixture file.  ``--check`` instead verifies the committed fixtures match
what the current code produces and exits non-zero on any diff, without
writing anything.

Regenerating is an explicit act: a fixture diff in review is the signal
that the dynamics changed, and it must be justified, not silently
absorbed.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))
sys.path.insert(0, str(REPO_ROOT))

from tests.golden.cases import (  # noqa: E402
    CASES,
    FIXTURE_DIR,
    expected_payload,
    generate_initial,
    run_case,
    write_fixture,
)


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("cases", nargs="*", help="case names (default: all)")
    parser.add_argument("--check", action="store_true",
                        help="verify fixtures instead of rewriting them")
    args = parser.parse_args(argv)

    selected = [c for c in CASES if not args.cases or c.name in args.cases]
    unknown = set(args.cases) - {c.name for c in CASES}
    if unknown:
        print(f"unknown cases: {', '.join(sorted(unknown))}")
        return 2

    failures = 0
    for case in selected:
        initial = generate_initial(case)
        result = run_case(case, initial, backend="dense")
        if args.check:
            path = FIXTURE_DIR / f"{case.name}.json"
            if not path.exists():
                print(f"MISSING {case.name}")
                failures += 1
                continue
            stored = json.loads(path.read_text())
            fresh = json.loads(json.dumps(expected_payload(result)))
            if stored["expect"] != fresh:
                print(f"DIFF    {case.name}: stored fixture does not match current code")
                failures += 1
            else:
                print(f"OK      {case.name}")
        else:
            path = write_fixture(case, initial, result)
            print(f"wrote {path} ({result.status} after {result.steps} steps)")
    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main())
