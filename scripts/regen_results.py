#!/usr/bin/env python
"""Rebuild the measured-numbers appendix from benchmark JSON output.

Run ``pytest benchmarks/ --benchmark-only`` first (it drops one JSON file
per figure into ``benchmarks/_results/``), then::

    python scripts/regen_results.py > docs/measured_results.md
"""

import json
import pathlib
import sys

RESULTS = pathlib.Path(__file__).resolve().parent.parent / "benchmarks" / "_results"


def emit_figure(data: dict) -> None:
    print(f"\n## {data['figure']} — {data['title']}")
    print(f"\nworst max/n ratio: **{data['worst_max_over_n']:.2f}**"
          f", non-converged runs: **{data['non_converged']}**\n")
    ns = sorted({int(n) for per in data["series"].values() for n in per}, key=int)
    header = "| series | " + " | ".join(f"mean @ n={n}" for n in ns) + " | worst max |"
    sep = "|" + "---|" * (len(ns) + 2)
    print(header)
    print(sep)
    for name, per in data["series"].items():
        cells = []
        worst = 0
        for n in ns:
            s = per.get(str(n)) or per.get(n)
            if s is None:
                cells.append("-")
            else:
                cells.append(f"{s['mean']:.1f}")
                worst = max(worst, int(s["max"]))
        print(f"| {name} | " + " | ".join(cells) + f" | {worst} |")


def main() -> int:
    if not RESULTS.exists():
        print("no benchmark results found; run pytest benchmarks/ --benchmark-only",
              file=sys.stderr)
        return 1
    print("# Measured results (regenerated from benchmarks/_results)")
    for path in sorted(RESULTS.glob("fig*.json")):
        with open(path) as fh:
            emit_figure(json.load(fh))
    theory = RESULTS / "theory_m_pn.json"
    if theory.exists():
        with open(theory) as fh:
            data = json.load(fh)
        print("\n## Theorem 2.11 — M(P_n) series")
        print("\n| n | M(P_n) |")
        print("|---|---|")
        for n, m in sorted(data.items(), key=lambda kv: int(kv[0])):
            print(f"| {n} | {m} |")
    return 0


if __name__ == "__main__":
    sys.exit(main())
