#!/usr/bin/env python
"""Rebuild the measured-numbers appendix from benchmark JSON output.

Run ``pytest benchmarks/ --benchmark-only`` first (it drops one JSON file
per figure into ``benchmarks/_results/``), then::

    python scripts/regen_results.py > docs/measured_results.md

or do both in one go with ``--run``, which executes the benchmark suite
itself before emitting the appendix.  Sweeps inside the suite use every
core by default (``repro.experiments.runner.resolve_n_jobs``); pass
``--jobs 1`` to force serial runs, or any explicit worker count.
"""

import argparse
import json
import os
import pathlib
import subprocess
import sys

ROOT = pathlib.Path(__file__).resolve().parent.parent
RESULTS = ROOT / "benchmarks" / "_results"


def run_benchmarks(jobs: int | None) -> int:
    """Execute the benchmark suite so it refreshes ``_results/``.

    ``jobs=None`` keeps the runner's use-the-machine default; an
    explicit value is exported as ``REPRO_N_JOBS`` for every sweep.
    """
    env = dict(os.environ)
    src = str(ROOT / "src")
    env["PYTHONPATH"] = src + os.pathsep + env["PYTHONPATH"] if env.get("PYTHONPATH") else src
    if jobs is not None:
        env["REPRO_N_JOBS"] = str(jobs)
    cmd = [sys.executable, "-m", "pytest", str(ROOT / "benchmarks"), "-q", "--benchmark-only"]
    print(f"running: {' '.join(cmd)}", file=sys.stderr)
    return subprocess.run(cmd, env=env, cwd=ROOT).returncode


def emit_figure(data: dict) -> None:
    print(f"\n## {data['figure']} — {data['title']}")
    print(f"\nworst max/n ratio: **{data['worst_max_over_n']:.2f}**"
          f", non-converged runs: **{data['non_converged']}**\n")
    ns = sorted({int(n) for per in data["series"].values() for n in per}, key=int)
    header = "| series | " + " | ".join(f"mean @ n={n}" for n in ns) + " | worst max |"
    sep = "|" + "---|" * (len(ns) + 2)
    print(header)
    print(sep)
    for name, per in data["series"].items():
        cells = []
        worst = 0
        for n in ns:
            s = per.get(str(n)) or per.get(n)
            if s is None:
                cells.append("-")
            else:
                cells.append(f"{s['mean']:.1f}")
                worst = max(worst, int(s["max"]))
        print(f"| {name} | " + " | ".join(cells) + f" | {worst} |")


def main() -> int:
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("--run", action="store_true",
                    help="run the benchmark suite first to refresh _results/")
    ap.add_argument("--jobs", type=int, default=None,
                    help="worker processes for sweeps (default: all cores)")
    args = ap.parse_args()
    if args.run:
        rc = run_benchmarks(args.jobs)
        if rc != 0:
            return rc
    if not RESULTS.exists():
        print("no benchmark results found; run pytest benchmarks/ --benchmark-only "
              "(or pass --run)", file=sys.stderr)
        return 1
    print("# Measured results (regenerated from benchmarks/_results)")
    for path in sorted(RESULTS.glob("fig*.json")):
        with open(path) as fh:
            emit_figure(json.load(fh))
    theory = RESULTS / "theory_m_pn.json"
    if theory.exists():
        with open(theory) as fh:
            data = json.load(fh)
        print("\n## Theorem 2.11 — M(P_n) series")
        print("\n| n | M(P_n) |")
        print("|---|---|")
        for n, m in sorted(data.items(), key=lambda kv: int(kv[0])):
            print(f"| {n} | {m} |")
    return 0


if __name__ == "__main__":
    sys.exit(main())
