"""Service benchmarks: concurrent admission, frame codec, stream replay.

Mirrors ``bench_fabric.py``'s baseline discipline: run standalone
(``python benchmarks/bench_service.py``) to measure the cells and diff
them against the committed ``BENCH_service.json`` at the repo root.
Any cell more than 25% slower than its baseline exits non-zero; a
regressed run never rewrites the baseline.  ``--smoke`` (CI) runs the
cheap cells only and never writes; ``--no-write`` measures without
rewriting; ``--force-write`` accepts regressed numbers.

Every timed cell is also *verified*: the admission cell pins zero
lost/duplicated jobs (accepted responses and on-disk job directories
must agree exactly, quota rejections must carry Retry-After), the
codec cell pins payload integrity, the replay cell pins byte-identity
of every streamed record.
"""

import asyncio
import json
import pathlib
import shutil
import tempfile
import time
from typing import Optional

from repro.experiments.campaign import encode_record_line
from repro.service import QuotaPolicy, ServiceConfig, ServiceThread
from repro.service.jobs import JobManager
from repro.service.protocol import (
    OP_BINARY,
    OP_CLOSE,
    OP_TEXT,
    WebSocket,
    decode_frame,
    encode_frame,
)
from repro.service.stream import stream_job

BASELINE_PATH = pathlib.Path(__file__).resolve().parent.parent / "BENCH_service.json"

REGRESSION_FACTOR = 1.25

#: cells whose *baseline* time is below this are too fast to time
#: reliably; they are reported but not gated (same rule as bench_fabric).
MIN_GATE_SECONDS = 0.1

SUBMISSIONS = 1000
MAX_QUEUED = 512
#: generous ceiling on p99 admission latency — the pin is "bounded",
#: the regression gate on total seconds tracks the trend
P99_CEILING_SECONDS = 5.0

CODEC_FRAMES = 20_000
REPLAY_RECORDS = 2_000

SPEC = {"game": {"name": "sg", "params": {"mode": "sum"}},
        "topology": {"name": "budget", "params": {"budget": 2}}}
PAYLOAD = {"kind": "trial", "spec": SPEC, "n": 8, "trials": 3, "seed": 5}


async def _submit_once(host: str, port: int, body: bytes, token: str):
    """One raw POST /jobs over its own connection; returns
    (status, parsed body, seconds)."""
    t0 = time.perf_counter()
    reader, writer = await asyncio.open_connection(host, port)
    try:
        head = (f"POST /jobs HTTP/1.1\r\nHost: bench\r\n"
                f"X-Client-Token: {token}\r\n"
                f"Content-Length: {len(body)}\r\n"
                f"Connection: close\r\n\r\n").encode()
        writer.write(head + body)
        await writer.drain()
        raw = await reader.read()
    finally:
        writer.close()
        try:
            await writer.wait_closed()
        except (ConnectionError, OSError):
            pass
    seconds = time.perf_counter() - t0
    status = int(raw.split(b" ", 2)[1])
    headers, _, payload = raw.partition(b"\r\n\r\n")
    return status, json.loads(payload), headers.decode(), seconds


def bench_admission(root) -> dict:
    """SUBMISSIONS concurrent submissions against an admission-only
    server: zero lost or duplicated jobs, quotas enforced, p99 bounded."""
    config = ServiceConfig(
        state_dir=root / "state", workers=0,
        quota=QuotaPolicy(max_queued=MAX_QUEUED,
                          max_jobs_per_client=SUBMISSIONS))
    body = json.dumps(PAYLOAD).encode()

    async def storm(host, port):
        return await asyncio.gather(*(
            _submit_once(host, port, body, f"client-{i % 16}")
            for i in range(SUBMISSIONS)))

    with ServiceThread(config) as svc:
        t0 = time.perf_counter()
        results = asyncio.run(storm(config.host, svc.port))
        seconds = time.perf_counter() - t0

    accepted = [p["id"] for status, p, _, _ in results if status == 201]
    rejected = [(p, headers) for status, p, headers, _ in results
                if status == 503]
    latencies = sorted(lat for _, _, _, lat in results)
    p99 = latencies[int(len(latencies) * 0.99) - 1]

    # zero lost, zero duplicated: the 201 ids and the on-disk job
    # directories are exactly the same set
    assert len(accepted) == len(set(accepted)) == MAX_QUEUED, len(accepted)
    assert len(accepted) + len(rejected) == SUBMISSIONS
    on_disk = {p.name for p in (root / "state" / "jobs").iterdir()}
    assert on_disk == set(accepted), "job table diverged from responses"
    for payload, headers in rejected:
        assert payload["error"] == "saturated"
        assert "retry-after:" in headers.lower()
    assert p99 < P99_CEILING_SECONDS, f"p99 admission latency {p99:.3f}s"
    return {"seconds": seconds, "accepted": len(accepted),
            "rejected": len(rejected), "p99_ms": round(p99 * 1000, 1)}


def bench_ws_codec(root) -> dict:
    """Encode + decode CODEC_FRAMES masked frames (the per-record cost
    of a stream); pins payload integrity through the mask round-trip."""
    payloads = [
        (b"%d:" % i) + b"x" * (64 + (i % 3) * 97) for i in range(CODEC_FRAMES)
    ]
    t0 = time.perf_counter()
    wire = b"".join(
        encode_frame(OP_BINARY, p, mask=bool(i % 2))
        for i, p in enumerate(payloads))
    count = 0
    view = memoryview(wire)
    offset = 0
    while offset < len(wire):
        # fixed-size window: frames here are small, and slicing the
        # whole tail each iteration would be quadratic
        frame, consumed = decode_frame(bytes(view[offset:offset + 1024]))
        assert frame.payload == payloads[count]
        offset += consumed
        count += 1
    seconds = time.perf_counter() - t0
    assert count == CODEC_FRAMES
    return {"seconds": seconds, "frames": count}


class _SinkWriter:
    """In-memory websocket peer for the replay cell."""

    def __init__(self):
        self.sent = bytearray()

    def write(self, data):
        self.sent += data

    async def drain(self):
        pass


def bench_stream_replay(root) -> dict:
    """Replay REPLAY_RECORDS stored records through stream_job; pins
    byte-identity of every streamed line."""
    manager = JobManager(root / "state", workers=0)
    manager.recover()
    job = manager.submit({**PAYLOAD, "trials": REPLAY_RECORDS}, client="bench")
    store = manager.store_dir(job.id)
    store.mkdir(parents=True)
    lines = [encode_record_line({"cell": "bench-n8", "trial": i,
                                 "steps": i % 40, "status": "converged"})
             for i in range(REPLAY_RECORDS)]
    (store / "trials-0of1.jsonl").write_text("".join(l + "\n" for l in lines))
    job.state = "done"
    manager._persist(job)

    writer = _SinkWriter()

    async def run():
        reader = asyncio.StreamReader()
        await stream_job(manager, job, WebSocket(reader, writer),
                         poll=0.001, queue_limit=REPLAY_RECORDS + 16)

    t0 = time.perf_counter()
    asyncio.run(asyncio.wait_for(run(), timeout=120))
    seconds = time.perf_counter() - t0

    got, closed = [], False
    buf = bytes(writer.sent)
    while buf:
        decoded = decode_frame(buf)
        if decoded is None:
            break
        frame, consumed = decode_frame(buf)
        buf = buf[consumed:]
        if frame.opcode == OP_CLOSE:
            closed = True
        elif frame.opcode == OP_TEXT:
            text = frame.payload.decode()
            if '"event"' not in text:
                got.append(text)
    assert got == lines, "streamed records diverged from the store"
    assert closed
    return {"seconds": seconds, "records": len(got)}


CELLS = {
    "admit-1k-concurrent": bench_admission,
    "ws-codec-20k": bench_ws_codec,
    "stream-replay-2k": bench_stream_replay,
}

SMOKE_CELLS = ("admit-1k-concurrent", "ws-codec-20k")


def run_cell(name: str) -> dict:
    """Time one cell in a throwaway directory; verify its pins."""
    fn = CELLS[name]
    tmp = tempfile.mkdtemp(prefix=f"bench-service-{name}-")
    try:
        measured = fn(pathlib.Path(tmp))
    finally:
        shutil.rmtree(tmp, ignore_errors=True)
    measured["cell"] = name
    measured["seconds"] = round(measured["seconds"], 4)
    return measured


def test_bench_cells_verify():
    """Every cell's identity pins hold (timings ignored)."""
    for name in sorted(CELLS):
        run_cell(name)


def compare_to_baseline(summary: dict, baseline: dict) -> list:
    """Cells >25% slower than the committed baseline (above the noise
    floor).  Returns ``[(cell, old, new), ...]``."""
    old_cells = {c["cell"]: c for c in baseline.get("cells", [])}
    regressions = []
    for cell in summary.get("cells", []):
        old = old_cells.get(cell["cell"])
        if old is None or old["seconds"] < MIN_GATE_SECONDS:
            continue
        if cell["seconds"] > old["seconds"] * REGRESSION_FACTOR:
            regressions.append((cell["cell"], old["seconds"], cell["seconds"]))
    return regressions


def main(smoke: bool = False, write_baseline: Optional[bool] = None,
         force: bool = False) -> int:
    """Measure the cells, diff against ``BENCH_service.json``."""
    names = SMOKE_CELLS if smoke else sorted(CELLS)
    reps = 2 if smoke else 3
    cells = []
    for name in names:
        best = None
        for _ in range(reps):  # best-of: deterministic work, noisy clock
            measured = run_cell(name)
            if best is None or measured["seconds"] < best["seconds"]:
                best = measured
        cells.append(best)
        detail = " ".join(f"{k}={v}" for k, v in sorted(best.items())
                          if k not in ("cell", "seconds"))
        print(f"{best['cell']:>20}: {best['seconds']:.3f}s {detail}")
    summary = {"cells": cells}

    regressions = []
    if BASELINE_PATH.exists():
        baseline = json.loads(BASELINE_PATH.read_text())
        regressions = compare_to_baseline(summary, baseline)
        for key, old, new in regressions:
            print(f"REGRESSION {key}: {old}s -> {new}s "
                  f"(allowed {REGRESSION_FACTOR:.2f}x = {old * REGRESSION_FACTOR:.4g}s)")
        if not regressions:
            print(f"no >25% regressions vs {BASELINE_PATH.name}")
    else:
        print("no committed baseline found; skipping regression check")

    if write_baseline is None:
        write_baseline = not smoke
    if write_baseline and regressions and not force:
        print("baseline NOT rewritten: regressions above; fix them or "
              "rerun with --force-write to accept the new numbers")
    elif write_baseline:
        BASELINE_PATH.write_text(json.dumps(summary, indent=2) + "\n")
        print(f"baseline written to {BASELINE_PATH}")
    else:
        print("baseline not rewritten")
    return 1 if regressions else 0


if __name__ == "__main__":
    import sys

    if "--force-write" in sys.argv:
        sys.exit(main(smoke="--smoke" in sys.argv, write_baseline=True,
                      force=True))
    sys.exit(main(smoke="--smoke" in sys.argv,
                  write_baseline=False if "--no-write" in sys.argv else None))
