"""Figure 11 — SUM-GBG: steps until convergence.

Paper: m in {n, 2n, 4n}, alpha in {n/10, n/4, n}, both policies, 5000
trials.  Claims: < 7n steps, linear growth in n, max cost <= random,
denser starts (m = 4n) slower than m = n, smaller alpha slower.
"""

from repro.experiments.gbg import figure11_spec
from repro.experiments.report import figure_summary, format_figure

from .conftest import run_figure_once, save_summary

N_VALUES = (10, 20, 30)
TRIALS = 10


def test_fig11_sum_gbg(benchmark):
    spec = figure11_spec(
        ms=("n", "4n"), alphas=("n/10", "n"), n_values=N_VALUES, trials=TRIALS
    )
    result = run_figure_once(benchmark, spec, seed=11)
    print()
    print(format_figure(result, "mean"))
    print()
    print(format_figure(result, "max"))
    save_summary("fig11", figure_summary(result))

    assert result.non_converged_total() == 0
    assert result.overall_max_ratio() < 7.0

    n = N_VALUES[-1]
    # denser initial networks take longer (alpha = n/10 series, random)
    sparse = result.series["m=n, a=n/10, random"][n].mean
    dense = result.series["m=4n, a=n/10, random"][n].mean
    assert dense > sparse

    # smaller alpha takes longer on dense starts
    small_a = result.series["m=4n, a=n/10, random"][n].mean
    big_a = result.series["m=4n, a=n, random"][n].mean
    assert small_a >= big_a * 0.9

    # max cost <= random for SUM
    mc = result.series["m=n, a=n/10, max cost"][n].mean
    rnd = result.series["m=n, a=n/10, random"][n].mean
    assert mc <= rnd * 1.25
