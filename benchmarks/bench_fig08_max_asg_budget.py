"""Figure 8 — MAX-ASG with budget k: steps until convergence.

Paper claims: every run < 5n steps (one outlier in their data); the max
cost and random policies are nearly indistinguishable; larger budgets
converge faster; k = 1 stays below n log n.
"""

import math

from repro.experiments.asg_budget import figure8_spec
from repro.experiments.report import figure_summary, format_figure

from .conftest import run_figure_once, save_summary

N_VALUES = (10, 20, 30, 40)
TRIALS = 12
BUDGETS = (1, 2, 4)


def test_fig08_max_asg_budget(benchmark):
    spec = figure8_spec(budgets=BUDGETS, n_values=N_VALUES, trials=TRIALS)
    result = run_figure_once(benchmark, spec, seed=8)
    print()
    print(format_figure(result, "mean"))
    print()
    print(format_figure(result, "max"))
    save_summary("fig08", figure_summary(result))

    assert result.non_converged_total() == 0
    assert result.overall_max_ratio() < 5.0

    n = N_VALUES[-1]
    # policies nearly indistinguishable under MAX
    for k in BUDGETS:
        mc = result.series[f"k={k}, max cost"][n].mean
        rnd = result.series[f"k={k}, random"][n].mean
        assert abs(mc - rnd) <= 0.75 * max(mc, rnd, 1.0)

    # larger budgets converge faster (k=4 vs k=2 under random)
    assert result.series["k=4, random"][n].mean <= result.series["k=2, random"][n].mean * 1.25

    # k=1 below the n log n envelope
    assert result.series["k=1, max cost"][n].max <= n * math.log2(n)
