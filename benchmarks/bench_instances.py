"""Instance benches: verification cost of every paper counterexample and
the exhaustive state-space classifications behind the corollaries.

These double as an ablation for the claim table in EXPERIMENTS.md: the
timings show that the full machine-checked verification of the paper's
negative results runs in seconds.
"""

import pytest

from repro.core.classify import classify_reachable
from repro.instances.figures import ALL_INSTANCES
from repro.instances.host_graphs import fig3_host_instance, fig9_host_instance
from repro.instances.verify import verify_instance

from .conftest import save_summary


@pytest.mark.parametrize("name", sorted(ALL_INSTANCES))
def test_verify_instance(benchmark, name):
    inst = ALL_INSTANCES[name]()

    def check():
        rep = verify_instance(inst)
        assert rep.ok
        return rep

    rep = benchmark.pedantic(check, iterations=1, rounds=1)
    save_summary(
        f"instance_{name}",
        {"theorem": inst.theorem, "steps": rep.steps, "improvements": rep.improvements},
    )


def test_classify_fig3_br_dynamics(benchmark):
    inst = fig3_host_instance()

    def run():
        rep = classify_reachable(inst.game, inst.network, best_response_only=True)
        assert not rep.weakly_acyclic
        return rep

    benchmark.pedantic(run, iterations=1, rounds=1)


def test_classify_fig9_improving_dynamics(benchmark):
    inst = fig9_host_instance()

    def run():
        rep = classify_reachable(inst.game, inst.network, max_states=20_000)
        assert not rep.truncated
        return rep

    benchmark.pedantic(run, iterations=1, rounds=1)
