"""Figure 12 — SUM-GBG starting topologies: random vs rl vs dl.

Paper claims: the topology's impact on convergence time is marginal
(about a factor of 2 at most); counter-intuitively ``dl`` (directed
line) is the fastest setting under both policies; the max cost policy
is at least as fast as the random policy.
"""

from repro.experiments.report import figure_summary, format_figure
from repro.experiments.topology import figure12_spec

from .conftest import run_figure_once, save_summary

N_VALUES = (10, 20, 30)
TRIALS = 10


def test_fig12_sum_gbg_topology(benchmark):
    spec = figure12_spec(alphas=("n/10", "n"), n_values=N_VALUES, trials=TRIALS)
    result = run_figure_once(benchmark, spec, seed=12)
    print()
    print(format_figure(result, "max"))
    save_summary("fig12", figure_summary(result))

    assert result.non_converged_total() == 0

    n = N_VALUES[-1]
    # topology impact bounded (compare the three settings per alpha/policy)
    for policy in ("max cost", "random"):
        for a in ("n/10", "n"):
            vals = [
                result.series[f"m=n, a={a}, {policy}"][n].mean,
                result.series[f"a={a}, rl, {policy}"][n].mean,
                result.series[f"a={a}, dl, {policy}"][n].mean,
            ]
            assert max(vals) <= 3.0 * max(min(vals), 1.0)

    # dl is the fastest (or ties) under the max cost policy
    dl = result.series["a=n/10, dl, max cost"][n].mean
    rl = result.series["a=n/10, rl, max cost"][n].mean
    assert dl <= rl * 1.2
