"""Figure 14 — MAX-GBG starting topologies: random vs rl vs dl.

Paper claims: topology matters more than in SUM (up to ~5x) and the
order is the intuitive one: random < rl < dl; the edge price alpha has
almost no influence; both policies perform nearly identically.
"""

from repro.experiments.report import figure_summary, format_figure
from repro.experiments.topology import figure14_spec

from .conftest import run_figure_once, save_summary

N_VALUES = (10, 20, 30)
TRIALS = 10


def test_fig14_max_gbg_topology(benchmark):
    spec = figure14_spec(alphas=("n/10", "n"), n_values=N_VALUES, trials=TRIALS)
    result = run_figure_once(benchmark, spec, seed=14)
    print()
    print(format_figure(result, "max"))
    save_summary("fig14", figure_summary(result))

    assert result.non_converged_total() == 0

    n = N_VALUES[-1]
    # random <= dl ordering (the paper's headline; rl sits in between)
    rand = result.series["m=n, a=n/10, random"][n].mean
    dl = result.series["a=n/10, dl, random"][n].mean
    assert rand <= dl * 1.1

    # alpha nearly irrelevant for the same topology/policy
    a_small = result.series["a=n/10, dl, random"][n].mean
    a_big = result.series["a=n, dl, random"][n].mean
    assert abs(a_small - a_big) <= 0.5 * max(a_small, a_big, 1.0)

    # the two policies are close on the dl setting
    mc = result.series["a=n/10, dl, max cost"][n].mean
    rnd = result.series["a=n/10, dl, random"][n].mean
    assert abs(mc - rnd) <= 0.75 * max(mc, rnd, 1.0)
