"""Statespace-explorer benchmarks: exhaustive census wall time per cell.

Mirrors ``bench_kernel.py``'s baseline discipline: run standalone
(``python benchmarks/bench_statespace.py``) to measure the census grid
and diff it against the committed ``BENCH_statespace.json`` at the repo
root.  Any cell more than 25% slower than its baseline number exits
non-zero; a regressed run never rewrites the baseline.  ``--smoke``
(CI) runs the smallest cells only and never writes; ``--no-write``
measures the full grid without rewriting; ``--force-write`` accepts
regressed numbers as the new baseline.

Every timed cell is also *verified*: the census must report the exact
state/equilibrium counts pinned here (they are mathematical facts about
the games, not tunables), so a perf "win" from exploring the wrong
graph can never pass.
"""

import json
import pathlib
import time
from typing import Optional

import pytest

from repro.core.games import (
    AsymmetricSwapGame,
    BuyGame,
    CooperativeBuyGame,
    GreedyBuyGame,
    SwapGame,
)
from repro.instances.figures import fig3_sum_asg_cycle
from repro.statespace import explore, verify_sinks

BASELINE_PATH = pathlib.Path(__file__).resolve().parent.parent / "BENCH_statespace.json"

REGRESSION_FACTOR = 1.25

#: cells whose *baseline* time is below this are too fast to time
#: reliably; they are reported but not gated (same rule as bench_kernel).
MIN_GATE_SECONDS = 0.1

#: the census grid: (cell name, expected states, expected equilibria).
#: The expectations pin graph identity — see the module docstring.
CELLS = {
    "sg-sum-n4": (lambda: explore(SwapGame("sum"), n=4), 38, 26),
    "asg-sum-n4": (lambda: explore(AsymmetricSwapGame("sum"), n=4), 624, 552),
    "asg-sum-n4-incremental": (
        lambda: explore(AsymmetricSwapGame("sum"), n=4, backend="incremental"),
        624, 552,
    ),
    "gbg-sum-n4-a1": (lambda: explore(GreedyBuyGame("sum", alpha=1.0), n=4), 624, 528),
    "sg-sum-n5": (lambda: explore(SwapGame("sum"), n=5), 728, 368),
    # greedy-equilibrium census: the BG's 104 GE strictly contain its 62
    # NE at alpha=2, n=4 — the gap the greedy moveset exists to measure
    "bg-sum-n4-a2-greedy": (
        lambda: explore(BuyGame("sum", alpha=2.0), n=4, moves="greedy"),
        624, 104,
    ),
    "coop-sum-n4-a2": (
        lambda: explore(CooperativeBuyGame("sum", alpha=2.0), n=4),
        624, 528,
    ),
    "fig3-reachable": (
        lambda: explore(fig3_sum_asg_cycle().game, start=fig3_sum_asg_cycle().network),
        4, 0,
    ),
}

SMOKE_CELLS = ("sg-sum-n4", "asg-sum-n4", "bg-sum-n4-a2-greedy",
               "fig3-reachable")


def run_cell(name: str, report=None) -> dict:
    """Time one census cell and verify its pinned identity.

    Pass an already-computed ``report`` to verify without re-exploring
    (``seconds`` is then 0 and meaningless).
    """
    fn, want_states, want_eq = CELLS[name]
    if report is None:
        t0 = time.perf_counter()
        report = fn()
        seconds = time.perf_counter() - t0
    else:
        seconds = 0.0
    assert report.complete and not report.truncated, name
    assert report.n_states == want_states, (
        f"{name}: {report.n_states} states, expected {want_states}")
    assert report.n_equilibria == want_eq, (
        f"{name}: {report.n_equilibria} equilibria, expected {want_eq}")
    return {
        "cell": name,
        "seconds": round(seconds, 4),
        "states": report.n_states,
        "edges": report.n_edges,
        "equilibria": report.n_equilibria,
        "cycles": len(report.cycles),
    }


@pytest.mark.parametrize("name", sorted(CELLS))
def test_census_cell(name):
    """Identity-pinned census per cell, plus a brute-force sink check."""
    fn, _, _ = CELLS[name]
    report = fn()
    run_cell(name, report=report)  # pins states/equilibria
    game = (fig3_sum_asg_cycle().game if name == "fig3-reachable"
            else None)
    if game is None:
        # reconstruct the cell's game for the oracle check
        game = {
            "sg-sum-n4": SwapGame("sum"),
            "asg-sum-n4": AsymmetricSwapGame("sum"),
            "asg-sum-n4-incremental": AsymmetricSwapGame("sum"),
            "gbg-sum-n4-a1": GreedyBuyGame("sum", alpha=1.0),
            "sg-sum-n5": SwapGame("sum"),
            "bg-sum-n4-a2-greedy": BuyGame("sum", alpha=2.0),
            "coop-sum-n4-a2": CooperativeBuyGame("sum", alpha=2.0),
        }[name]
    verify_sinks(report, game)


def compare_to_baseline(summary: dict, baseline: dict) -> list:
    """Cells >25% slower than the committed baseline (above the noise
    floor).  Returns ``[(cell, old, new), ...]``."""
    old_cells = {c["cell"]: c for c in baseline.get("cells", [])}
    regressions = []
    for cell in summary.get("cells", []):
        old = old_cells.get(cell["cell"])
        if old is None or old["seconds"] < MIN_GATE_SECONDS:
            continue
        if cell["seconds"] > old["seconds"] * REGRESSION_FACTOR:
            regressions.append((cell["cell"], old["seconds"], cell["seconds"]))
    return regressions


def main(smoke: bool = False, write_baseline: Optional[bool] = None,
         force: bool = False) -> int:
    """Measure the grid, diff against ``BENCH_statespace.json``."""
    names = SMOKE_CELLS if smoke else sorted(CELLS)
    reps = 2 if smoke else 3
    cells = []
    for name in names:
        best = None
        for _ in range(reps):  # best-of: deterministic work, noisy clock
            measured = run_cell(name)
            if best is None or measured["seconds"] < best["seconds"]:
                best = measured
        cells.append(best)
        print(f"{best['cell']:>24}: {best['seconds']:.3f}s "
              f"states={best['states']} edges={best['edges']} "
              f"eq={best['equilibria']} cycles={best['cycles']}")
    summary = {"cells": cells}

    regressions = []
    if BASELINE_PATH.exists():
        baseline = json.loads(BASELINE_PATH.read_text())
        regressions = compare_to_baseline(summary, baseline)
        for key, old, new in regressions:
            print(f"REGRESSION {key}: {old}s -> {new}s "
                  f"(allowed {REGRESSION_FACTOR:.2f}x = {old * REGRESSION_FACTOR:.4g}s)")
        if not regressions:
            print(f"no >25% regressions vs {BASELINE_PATH.name}")
    else:
        print("no committed baseline found; skipping regression check")

    if write_baseline is None:
        write_baseline = not smoke
    if write_baseline and regressions and not force:
        print("baseline NOT rewritten: regressions above; fix them or "
              "rerun with --force-write to accept the new numbers")
    elif write_baseline:
        BASELINE_PATH.write_text(json.dumps(summary, indent=2) + "\n")
        print(f"baseline written to {BASELINE_PATH}")
    else:
        print("baseline not rewritten")
    return 1 if regressions else 0


if __name__ == "__main__":
    import sys

    if "--force-write" in sys.argv:
        sys.exit(main(smoke="--smoke" in sys.argv, write_baseline=True,
                      force=True))
    sys.exit(main(smoke="--smoke" in sys.argv,
                  write_baseline=False if "--no-write" in sys.argv else None))
