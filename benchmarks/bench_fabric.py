"""Fabric benchmarks: work-queue throughput, drain overhead, compaction.

Mirrors ``bench_statespace.py``'s baseline discipline: run standalone
(``python benchmarks/bench_fabric.py``) to measure the cells and diff
them against the committed ``BENCH_fabric.json`` at the repo root.  Any
cell more than 25% slower than its baseline number exits non-zero; a
regressed run never rewrites the baseline.  ``--smoke`` (CI) runs the
cheap cells only and never writes; ``--no-write`` measures everything
without rewriting; ``--force-write`` accepts regressed numbers.

Every timed cell is also *verified*: queue counts, drained aggregates
(byte-identical to a serial run), and compacted row counts are pinned,
so a perf "win" from dropping work can never pass.
"""

import json
import pathlib
import shutil
import tempfile
import time
from typing import Optional

from repro.experiments.asg_budget import figure7_spec
from repro.experiments.campaign import (
    CampaignStore,
    aggregate_payload,
    run_campaign,
)
from repro.experiments.columnar import ColumnarStore, compact_store
from repro.experiments.fabric import WorkQueue, drain_campaign

BASELINE_PATH = pathlib.Path(__file__).resolve().parent.parent / "BENCH_fabric.json"

REGRESSION_FACTOR = 1.25

#: cells whose *baseline* time is below this are too fast to time
#: reliably; they are reported but not gated (same rule as bench_kernel).
MIN_GATE_SECONDS = 0.1

QUEUE_UNITS = 1000
SYNTH_ROWS = 20_000
SYNTH_CELLS = 8


def bench_queue(root) -> dict:
    """Initialize, claim, heartbeat, and complete QUEUE_UNITS units."""
    queue = WorkQueue(root)
    units = [{"id": f"u{i:05d}"} for i in range(QUEUE_UNITS)]
    t0 = time.perf_counter()
    enqueued = queue.initialize(units)
    completed = 0
    while (lease := queue.claim("w0")) is not None:
        queue.heartbeat(lease)
        queue.complete(lease, {"ok": True})
        completed += 1
    seconds = time.perf_counter() - t0
    assert enqueued == completed == QUEUE_UNITS, (enqueued, completed)
    assert queue.drained() and queue.counts()["done"] == QUEUE_UNITS
    return {"seconds": seconds, "units": completed}


def bench_drain(root) -> dict:
    """Drain a small fig7 slice with 2 workers; pin byte-identity."""
    spec = figure7_spec()
    serial = run_campaign(spec, root / "serial", trials=4, n_values=(10,),
                          n_jobs=1)
    want = json.dumps(aggregate_payload(serial.result), sort_keys=True)
    t0 = time.perf_counter()
    report = drain_campaign(spec, root / "fab", trials=4, n_values=(10,),
                            workers=2, lease_ttl=10.0, unit_trials=2)
    seconds = time.perf_counter() - t0
    assert report.complete and report.units_failed == 0
    got = json.dumps(aggregate_payload(report.result), sort_keys=True)
    assert got == want, "drained aggregate diverged from the serial run"
    return {"seconds": seconds, "units": report.units_done}


def _synthetic_store(root) -> CampaignStore:
    """SYNTH_ROWS records across SYNTH_CELLS cells, written as JSONL."""
    store = CampaignStore(root)
    store.root.mkdir(parents=True, exist_ok=True)
    trials_per_cell = SYNTH_ROWS // SYNTH_CELLS
    (store.root / "manifest.json").write_text(json.dumps({
        "version": 1, "figure": "bench", "trials": trials_per_cell,
        "cells": [{"key": f"c{c}", "series": f"s{c}", "n": 10}
                  for c in range(SYNTH_CELLS)],
    }))
    with store.open_tagged_writer("bench") as fh:
        for i in range(SYNTH_ROWS):
            store.append(fh, {
                "cell": f"c{i % SYNTH_CELLS}",
                "trial": i // SYNTH_CELLS,
                "steps": i % 50,
                "status": "converged" if i % 7 else "capped",
            })
    return store


def bench_compact(root) -> dict:
    """Compact SYNTH_ROWS rows into the pure-python chunk layout."""
    store = _synthetic_store(root)
    t0 = time.perf_counter()
    summary = compact_store(store, use_parquet=False)
    seconds = time.perf_counter() - t0
    assert summary["rows"] == SYNTH_ROWS, summary["rows"]
    counts = ColumnarStore(root).cells_done(SYNTH_ROWS // SYNTH_CELLS)
    assert counts is not None
    assert sum(counts.values()) == SYNTH_ROWS
    return {"seconds": seconds, "rows": summary["rows"]}


def bench_columnar_scan(root) -> dict:
    """Stream every compacted row back out (the aggregate read path)."""
    store = _synthetic_store(root)
    compact_store(store, use_parquet=False, prune=True)
    columnar = ColumnarStore(root)
    t0 = time.perf_counter()
    rows = sum(1 for _ in columnar.iter_rows())
    seconds = time.perf_counter() - t0
    assert rows == SYNTH_ROWS, rows
    return {"seconds": seconds, "rows": rows}


CELLS = {
    "queue-1k-units": bench_queue,
    "drain-fig7-2w": bench_drain,
    "compact-20k-rows": bench_compact,
    "columnar-scan-20k": bench_columnar_scan,
}

SMOKE_CELLS = ("queue-1k-units", "compact-20k-rows")


def run_cell(name: str) -> dict:
    """Time one cell in a throwaway directory; verify its pins."""
    fn = CELLS[name]
    tmp = tempfile.mkdtemp(prefix=f"bench-fabric-{name}-")
    try:
        measured = fn(pathlib.Path(tmp))
    finally:
        shutil.rmtree(tmp, ignore_errors=True)
    measured["cell"] = name
    measured["seconds"] = round(measured["seconds"], 4)
    return measured


def test_bench_cells_verify():
    """Every cell's identity pins hold (timings ignored)."""
    for name in sorted(CELLS):
        run_cell(name)


def compare_to_baseline(summary: dict, baseline: dict) -> list:
    """Cells >25% slower than the committed baseline (above the noise
    floor).  Returns ``[(cell, old, new), ...]``."""
    old_cells = {c["cell"]: c for c in baseline.get("cells", [])}
    regressions = []
    for cell in summary.get("cells", []):
        old = old_cells.get(cell["cell"])
        if old is None or old["seconds"] < MIN_GATE_SECONDS:
            continue
        if cell["seconds"] > old["seconds"] * REGRESSION_FACTOR:
            regressions.append((cell["cell"], old["seconds"], cell["seconds"]))
    return regressions


def main(smoke: bool = False, write_baseline: Optional[bool] = None,
         force: bool = False) -> int:
    """Measure the cells, diff against ``BENCH_fabric.json``."""
    names = SMOKE_CELLS if smoke else sorted(CELLS)
    reps = 2 if smoke else 3
    cells = []
    for name in names:
        best = None
        for _ in range(reps):  # best-of: deterministic work, noisy clock
            measured = run_cell(name)
            if best is None or measured["seconds"] < best["seconds"]:
                best = measured
        cells.append(best)
        detail = " ".join(f"{k}={v}" for k, v in sorted(best.items())
                          if k not in ("cell", "seconds"))
        print(f"{best['cell']:>20}: {best['seconds']:.3f}s {detail}")
    summary = {"cells": cells}

    regressions = []
    if BASELINE_PATH.exists():
        baseline = json.loads(BASELINE_PATH.read_text())
        regressions = compare_to_baseline(summary, baseline)
        for key, old, new in regressions:
            print(f"REGRESSION {key}: {old}s -> {new}s "
                  f"(allowed {REGRESSION_FACTOR:.2f}x = {old * REGRESSION_FACTOR:.4g}s)")
        if not regressions:
            print(f"no >25% regressions vs {BASELINE_PATH.name}")
    else:
        print("no committed baseline found; skipping regression check")

    if write_baseline is None:
        write_baseline = not smoke
    if write_baseline and regressions and not force:
        print("baseline NOT rewritten: regressions above; fix them or "
              "rerun with --force-write to accept the new numbers")
    elif write_baseline:
        BASELINE_PATH.write_text(json.dumps(summary, indent=2) + "\n")
        print(f"baseline written to {BASELINE_PATH}")
    else:
        print("baseline not rewritten")
    return 1 if regressions else 0


if __name__ == "__main__":
    import sys

    if "--force-write" in sys.argv:
        sys.exit(main(smoke="--smoke" in sys.argv, write_baseline=True,
                      force=True))
    sys.exit(main(smoke="--smoke" in sys.argv,
                  write_baseline=False if "--no-write" in sys.argv else None))
