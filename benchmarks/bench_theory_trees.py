"""Theory benches — Theorems 2.1 / 2.11 and Corollaries 3.1 / 3.2.

Regenerates the paper's tree-convergence quantities:

* the MAX-SG path series M(P_n) under the Theorem 2.11 policy
  (Theta(n log n));
* adversarial-free random-tree convergence versus the O(n^3) bound;
* the SUM-SG max-cost exact bound n-3 on even paths.
"""

import pytest

from repro.core.games import AsymmetricSwapGame, SwapGame
from repro.core.policies import MaxCostPolicy, RandomPolicy
from repro.graphs.generators import path_network, random_tree_network
from repro.theory.bounds import max_sg_tree_bound, nlogn, sum_asg_maxcost_bound
from repro.theory.tree_dynamics import path_lower_bound_run, run_tree_dynamics

from .conftest import save_summary


def test_theorem_2_11_path_series(benchmark):
    """M(P_n) for n = 9..49: superlinear, below 2 n log n."""

    def series():
        return {n: path_lower_bound_run(n).steps for n in (9, 17, 25, 33, 49)}

    data = benchmark.pedantic(series, iterations=1, rounds=1)
    print()
    print("n      M(Pn)   n log2 n")
    for n, m in data.items():
        print(f"{n:<6d} {m:<7d} {nlogn(n):7.1f}")
    save_summary("theory_m_pn", {str(k): v for k, v in data.items()})
    for n, m in data.items():
        assert m <= 2 * nlogn(n)
    assert data[33] > 2.2 * data[17] * 0.9  # superlinear doubling


def test_theorem_2_1_random_trees(benchmark):
    """MAX-SG random-tree convergence under the random policy stays far
    below the O(n^3) bound of Theorem 2.1."""

    def run():
        out = {}
        for n in (10, 20, 30):
            steps = []
            for seed in range(5):
                net = random_tree_network(n, seed=seed)
                rep = run_tree_dynamics(
                    SwapGame("max"), net, RandomPolicy(), seed=seed,
                    check_potential=False,
                )
                assert rep.result.converged
                steps.append(rep.steps)
            out[n] = max(steps)
        return out

    data = benchmark.pedantic(run, iterations=1, rounds=1)
    print()
    print("n      worst steps   O(n^3) bound")
    for n, s in data.items():
        print(f"{n:<6d} {s:<13d} {max_sg_tree_bound(n):12.0f}")
    save_summary("theory_tree_worst", {str(k): v for k, v in data.items()})
    for n, s in data.items():
        assert s <= max_sg_tree_bound(n)


def test_corollary_3_2_exact_path_bound(benchmark):
    """SUM-SG on even paths under max cost hits exactly n-3 steps."""

    def run():
        out = {}
        for n in (8, 10, 12, 14):
            rep = run_tree_dynamics(
                SwapGame("sum"), path_network(n), MaxCostPolicy(tie_break="index"),
                seed=1, check_potential=False,
            )
            out[n] = rep.steps
        return out

    data = benchmark.pedantic(run, iterations=1, rounds=1)
    print()
    print("n      steps   bound n-3")
    for n, s in data.items():
        print(f"{n:<6d} {s:<7d} {sum_asg_maxcost_bound(n)}")
    for n, s in data.items():
        assert s == sum_asg_maxcost_bound(n)
