"""Figure 13 — MAX-GBG: steps until convergence.

Paper claims: < 8n steps; linear in n; alpha matters far less than in
the SUM version; for m >= 2n the max cost policy is *slower* than the
random policy (the opposite of SUM).
"""

from repro.experiments.gbg import figure13_spec
from repro.experiments.report import figure_summary, format_figure

from .conftest import run_figure_once, save_summary

N_VALUES = (10, 20, 30)
TRIALS = 10


def test_fig13_max_gbg(benchmark):
    spec = figure13_spec(
        ms=("n", "4n"), alphas=("n/10", "n"), n_values=N_VALUES, trials=TRIALS
    )
    result = run_figure_once(benchmark, spec, seed=13)
    print()
    print(format_figure(result, "mean"))
    print()
    print(format_figure(result, "max"))
    save_summary("fig13", figure_summary(result))

    assert result.non_converged_total() == 0
    assert result.overall_max_ratio() < 8.0

    n = N_VALUES[-1]
    # alpha has little impact under MAX (same m, same policy)
    a_small = result.series["m=4n, a=n/10, random"][n].mean
    a_big = result.series["m=4n, a=n, random"][n].mean
    assert abs(a_small - a_big) <= 0.6 * max(a_small, a_big, 1.0)

    # for dense starts the max cost policy is not faster than random
    mc = result.series["m=4n, a=n/10, max cost"][n].mean
    rnd = result.series["m=4n, a=n/10, random"][n].mean
    assert mc >= rnd * 0.8
