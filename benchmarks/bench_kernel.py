"""Kernel micro-benchmarks: APSP, single-source BFS, deviation pricing,
full best-response computation, one dynamics step — and whole
dynamics *trajectories* under the dense vs incremental distance
backends (the engine of ``repro.graphs.incremental``).

These are the quantities the hpc-parallel tuning was aimed at; the APSP
via layered boolean matmul is the hot path of every experiment, and the
trajectory benchmark records how much of it the incremental engine
avoids re-doing.

Run standalone (``python benchmarks/bench_kernel.py``) to emit the
machine-readable ``BENCH_kernel.json`` baseline at the repo root —
future PRs diff against it for the perf trajectory.  Every standalone
run first *compares* against the committed baseline and exits non-zero
if any kernel number or trajectory cell regressed by more than 25%
(``REGRESSION_FACTOR``; kernel micros compare machine-normalised, tiny
trajectory cells sit below a noise floor and are not gated).  A
regressed run never rewrites the baseline.  ``--smoke`` runs only the
smallest grid cells (used by CI) and never rewrites the baseline;
``--no-write`` runs the full grid without rewriting it;
``--force-write`` accepts regressed numbers as the new baseline.
"""

import json
import pathlib
import time
from typing import Optional

import numpy as np
import pytest

from repro.core.best_response import DeviationEvaluator
from repro.core.costs import DistanceMode
from repro.core.dynamics import run_dynamics
from repro.core.games import AsymmetricSwapGame, GreedyBuyGame
from repro.core.policies import MaxCostPolicy
from repro.graphs import adjacency as adj
from repro.graphs.generators import random_budget_network, random_m_edge_network


@pytest.fixture(scope="module")
def net100():
    return random_budget_network(100, 3, seed=1)


@pytest.fixture(scope="module")
def net50():
    return random_m_edge_network(50, 200, seed=2)


def test_bfs_single_source_n100(benchmark, net100):
    benchmark(adj.bfs_distances, net100.A, 0)


def test_apsp_n100(benchmark, net100):
    benchmark(adj.all_pairs_distances, net100.A)


def test_apsp_without_vertex_n100(benchmark, net100):
    benchmark(adj.distances_without_vertex, net100.A, 50)


def test_deviation_evaluator_build_n100(benchmark, net100):
    benchmark(DeviationEvaluator, net100, 10, DistanceMode.SUM)


def test_deviation_batch_n100(benchmark, net100):
    ev = DeviationEvaluator(net100, 10, DistanceMode.SUM)
    kept = net100.neighbors(10)[:-1]
    base = ev.base_vector(kept)
    candidates = np.arange(20, 90)
    benchmark(ev.batch_costs, base, candidates)


def test_asg_best_response_n100(benchmark, net100):
    game = AsymmetricSwapGame("sum")
    benchmark(game.best_responses, net100, 10)


def test_gbg_best_response_n50(benchmark, net50):
    game = GreedyBuyGame("sum", alpha=12.5)
    benchmark(game.best_responses, net50, 10)


def test_maxcost_policy_select_n50(benchmark, net50):
    game = GreedyBuyGame("sum", alpha=12.5)
    policy = MaxCostPolicy()
    rng = np.random.default_rng(0)
    benchmark(policy.select, game, net50, rng)


def test_unhappy_scan_n50(benchmark, net50):
    game = AsymmetricSwapGame("max")
    benchmark(game.unhappy_agents, net50)


# ---------------------------------------------------------------------------
# dynamics-trajectory benchmark: dense vs incremental backend
# ---------------------------------------------------------------------------

TRAJECTORY_NS = (30, 60, 120)
TRAJECTORY_SEED = 7


def _trajectory_setup(game_kind: str, n: int):
    """One reproducible (game, initial network, step cap) trajectory cell."""
    if game_kind == "asg":
        game = AsymmetricSwapGame("sum")
        net = random_budget_network(n, 3, seed=TRAJECTORY_SEED)
    elif game_kind == "gbg":
        game = GreedyBuyGame("sum", alpha=n / 4.0)
        net = random_m_edge_network(n, 2 * n, seed=TRAJECTORY_SEED)
    else:
        raise ValueError(game_kind)
    return game, net, 3 * n


def run_trajectory(game_kind: str, n: int, backend: str):
    """Run one trajectory cell under ``backend``; returns (seconds, result)."""
    game, net, max_steps = _trajectory_setup(game_kind, n)
    t0 = time.perf_counter()
    result = run_dynamics(
        game, net, MaxCostPolicy(), seed=TRAJECTORY_SEED,
        max_steps=max_steps, backend=backend,
    )
    return time.perf_counter() - t0, result


def bench_trajectory_cell(game_kind: str, n: int, reps: int = 1) -> dict:
    """Time both backends on one cell and verify trajectory equivalence.

    With ``reps > 1`` each backend is timed best-of-``reps`` (the runs
    are deterministic, so repetition only removes scheduler/cache noise;
    equivalence is still asserted on every repetition).
    """
    dense_s, dense = run_trajectory(game_kind, n, "dense")
    inc_s, inc = run_trajectory(game_kind, n, "incremental")
    assert [(r.agent, r.move) for r in dense.trajectory] == [
        (r.agent, r.move) for r in inc.trajectory
    ], f"{game_kind} n={n}: backends diverged"
    assert dense.final.state_key() == inc.final.state_key()
    for _ in range(reps - 1):
        t, rerun = run_trajectory(game_kind, n, "dense")
        assert rerun.final.state_key() == dense.final.state_key()
        dense_s = min(dense_s, t)
        t, rerun = run_trajectory(game_kind, n, "incremental")
        assert rerun.final.state_key() == dense.final.state_key()
        inc_s = min(inc_s, t)
    return {
        "game": game_kind,
        "n": n,
        "steps": dense.steps,
        "status": dense.status,
        "dense_s": round(dense_s, 4),
        "incremental_s": round(inc_s, 4),
        "speedup": round(dense_s / inc_s, 2),
        "backend_stats": inc.backend_stats,
    }


@pytest.mark.parametrize("game_kind", ["asg", "gbg"])
@pytest.mark.parametrize("n", TRAJECTORY_NS)
def test_dynamics_trajectory_backends(game_kind, n):
    """Backend equivalence at every grid cell.

    The >=2x speedup floor at n=120 is opt-in (``BENCH_ASSERT_SPEEDUP=1``)
    so a loaded machine or a no-BLAS numpy cannot fail the *equivalence*
    signal with a perf flake; the standalone ``main()`` run always
    records the measured ratios in BENCH_kernel.json.
    """
    import os

    cell = bench_trajectory_cell(game_kind, n)
    if n == 120 and os.environ.get("BENCH_ASSERT_SPEEDUP"):
        assert cell["speedup"] >= 2.0, cell
    print(f"\n{game_kind} n={n}: dense {cell['dense_s']}s, "
          f"incremental {cell['incremental_s']}s ({cell['speedup']}x)")


BASELINE_PATH = pathlib.Path(__file__).resolve().parent.parent / "BENCH_kernel.json"

#: a kernel is "regressed" when it is more than this factor slower than
#: the committed baseline number for the same key.
REGRESSION_FACTOR = 1.25

#: trajectory cells whose *baseline* dense time is below this are too
#: fast to time reliably (single-core scheduler noise exceeds the 25%
#: margin even best-of-6); they are reported but not gated.
MIN_GATE_SECONDS = 0.1


def _best_of(fn, reps: int) -> float:
    """Best-of-``reps`` wall time of ``fn`` in milliseconds."""
    fn()  # warm caches / BLAS threads outside the timed reps
    best = float("inf")
    for _ in range(reps):
        t0 = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - t0)
    return best * 1e3


def _kernel_micro(reps: int) -> dict:
    """The kernel micro-benchmarks: reference, BLAS-layered, bit-packed."""
    from repro.graphs import bitkernel

    net = random_budget_network(100, 3, seed=1)
    with bitkernel.forced(False):
        blas_ms = _best_of(lambda: adj.all_pairs_distances_fast(net.A), reps)
    with bitkernel.forced(True):
        bit_ms = _best_of(lambda: adj.all_pairs_distances_fast(net.A), reps)
    return {
        "apsp_bool_matmul_n100_ms": round(_best_of(lambda: adj.all_pairs_distances(net.A), reps), 3),
        "apsp_blas_layered_n100_ms": round(blas_ms, 3),
        "apsp_bitkernel_n100_ms": round(bit_ms, 3),
    }


#: kernel micro numbers are gated as ratios against this same-run
#: reference kernel (the untouched boolean matmul), so raw machine speed
#: cancels and the gate survives running on different hardware than the
#: committed baseline (CI runners vs dev boxes).
KERNEL_REFERENCE = "apsp_bool_matmul_n100_ms"


def compare_to_baseline(summary: dict, baseline: dict) -> list:
    """Regressions of ``summary`` vs ``baseline``: >25% slower on any
    kernel micro number or any trajectory cell present in both.

    Kernel numbers compare machine-normalised (relative to the same
    run's :data:`KERNEL_REFERENCE`); trajectory cells compare absolute
    seconds but only above the :data:`MIN_GATE_SECONDS` noise floor.
    Returns ``[(key, old, new), ...]`` — empty when everything holds.
    """
    regressions = []
    old_kernel = baseline.get("kernel", {})
    new_kernel = summary.get("kernel", {})
    old_ref = old_kernel.get(KERNEL_REFERENCE)
    new_ref = new_kernel.get(KERNEL_REFERENCE)
    normalise = bool(old_ref and new_ref)
    for key, new in new_kernel.items():
        old = old_kernel.get(key)
        if old is None or key == KERNEL_REFERENCE:
            continue
        if normalise:
            old, new = old / old_ref, new / new_ref
            key = f"{key}/{KERNEL_REFERENCE}"
        if new > old * REGRESSION_FACTOR:
            regressions.append((f"kernel.{key}", round(old, 4), round(new, 4)))
    old_cells = {
        (c["game"], c["n"]): c for c in baseline.get("trajectories", [])
    }
    for cell in summary.get("trajectories", []):
        old = old_cells.get((cell["game"], cell["n"]))
        if old is None or old["dense_s"] < MIN_GATE_SECONDS:
            continue
        for field in ("dense_s", "incremental_s"):
            if cell[field] > old[field] * REGRESSION_FACTOR:
                regressions.append(
                    (f"{cell['game']}.n{cell['n']}.{field}", old[field], cell[field])
                )
    return regressions


def main(smoke: bool = False, write_baseline: Optional[bool] = None,
         force: bool = False) -> int:
    """Run the benchmark matrix and diff it against ``BENCH_kernel.json``.

    Full runs measure the whole grid best-of-3 and rewrite the baseline
    (unless ``write_baseline=False``, and never while the regression
    gate is firing unless ``force``); ``--smoke`` runs (CI) measure the
    smallest cells only, never touch the committed baseline, and — like
    full runs — exit non-zero when any kernel regressed >25% against it.
    """
    ns = TRAJECTORY_NS[:1] if smoke else TRAJECTORY_NS
    summary = {
        "kernel": _kernel_micro(reps=20 if smoke else 50),
        "trajectories": [
            # the small cells are so fast that single-core scheduler
            # noise dominates; give them more best-of repetitions
            bench_trajectory_cell(game_kind, n, reps=2 if smoke else (3 if n >= 120 else 6))
            for game_kind in ("asg", "gbg")
            for n in ns
        ],
    }
    for cell in summary["trajectories"]:
        print(f"{cell['game']:>4} n={cell['n']:>3}: steps={cell['steps']:>4} "
              f"dense={cell['dense_s']:.2f}s incremental={cell['incremental_s']:.2f}s "
              f"speedup={cell['speedup']:.2f}x")
    print("kernel:", json.dumps(summary["kernel"]))

    regressions = []
    if BASELINE_PATH.exists():
        baseline = json.loads(BASELINE_PATH.read_text())
        regressions = compare_to_baseline(summary, baseline)
        for key, old, new in regressions:
            print(f"REGRESSION {key}: {old} -> {new} "
                  f"(allowed {REGRESSION_FACTOR:.2f}x = {old * REGRESSION_FACTOR:.4g})")
        if not regressions:
            print(f"no >25% regressions vs {BASELINE_PATH.name}")
    else:
        print("no committed baseline found; skipping regression check")

    if write_baseline is None:
        write_baseline = not smoke
    if write_baseline and regressions and not force:
        # never let a regressed run silently become the new baseline —
        # that would erase the very evidence the gate exists to keep
        print("baseline NOT rewritten: regressions above; fix them or "
              "rerun with --force-write to accept the new numbers")
    elif write_baseline:
        BASELINE_PATH.write_text(json.dumps(summary, indent=2) + "\n")
        print(f"baseline written to {BASELINE_PATH}")
    else:
        print("baseline not rewritten")
    return 1 if regressions else 0


if __name__ == "__main__":
    import sys

    if "--force-write" in sys.argv:
        sys.exit(main(smoke="--smoke" in sys.argv, write_baseline=True,
                      force=True))
    sys.exit(main(smoke="--smoke" in sys.argv,
                  write_baseline=False if "--no-write" in sys.argv else None))
