"""Kernel micro-benchmarks: APSP, single-source BFS, deviation pricing,
full best-response computation and one dynamics step.

These are the quantities the hpc-parallel tuning was aimed at; the APSP
via layered boolean matmul is the hot path of every experiment.
"""

import numpy as np
import pytest

from repro.core.best_response import DeviationEvaluator
from repro.core.costs import DistanceMode
from repro.core.games import AsymmetricSwapGame, GreedyBuyGame
from repro.core.policies import MaxCostPolicy
from repro.graphs import adjacency as adj
from repro.graphs.generators import random_budget_network, random_m_edge_network


@pytest.fixture(scope="module")
def net100():
    return random_budget_network(100, 3, seed=1)


@pytest.fixture(scope="module")
def net50():
    return random_m_edge_network(50, 200, seed=2)


def test_bfs_single_source_n100(benchmark, net100):
    benchmark(adj.bfs_distances, net100.A, 0)


def test_apsp_n100(benchmark, net100):
    benchmark(adj.all_pairs_distances, net100.A)


def test_apsp_without_vertex_n100(benchmark, net100):
    benchmark(adj.distances_without_vertex, net100.A, 50)


def test_deviation_evaluator_build_n100(benchmark, net100):
    benchmark(DeviationEvaluator, net100, 10, DistanceMode.SUM)


def test_deviation_batch_n100(benchmark, net100):
    ev = DeviationEvaluator(net100, 10, DistanceMode.SUM)
    kept = net100.neighbors(10)[:-1]
    base = ev.base_vector(kept)
    candidates = np.arange(20, 90)
    benchmark(ev.batch_costs, base, candidates)


def test_asg_best_response_n100(benchmark, net100):
    game = AsymmetricSwapGame("sum")
    benchmark(game.best_responses, net100, 10)


def test_gbg_best_response_n50(benchmark, net50):
    game = GreedyBuyGame("sum", alpha=12.5)
    benchmark(game.best_responses, net50, 10)


def test_maxcost_policy_select_n50(benchmark, net50):
    game = GreedyBuyGame("sum", alpha=12.5)
    policy = MaxCostPolicy()
    rng = np.random.default_rng(0)
    benchmark(policy.select, game, net50, rng)


def test_unhappy_scan_n50(benchmark, net50):
    game = AsymmetricSwapGame("max")
    benchmark(game.unhappy_agents, net50)
