"""Kernel micro-benchmarks: APSP, single-source BFS, deviation pricing,
full best-response computation, one dynamics step — and whole
dynamics *trajectories* under the dense vs incremental distance
backends (the engine of ``repro.graphs.incremental``).

These are the quantities the hpc-parallel tuning was aimed at; the APSP
via layered boolean matmul is the hot path of every experiment, and the
trajectory benchmark records how much of it the incremental engine
avoids re-doing.

Run standalone (``python benchmarks/bench_kernel.py``) to emit the
machine-readable ``BENCH_kernel.json`` baseline at the repo root —
future PRs diff against it for the perf trajectory.  ``--smoke`` runs
only the smallest grid cell (used by CI).
"""

import json
import pathlib
import time

import numpy as np
import pytest

from repro.core.best_response import DeviationEvaluator
from repro.core.costs import DistanceMode
from repro.core.dynamics import run_dynamics
from repro.core.games import AsymmetricSwapGame, GreedyBuyGame
from repro.core.policies import MaxCostPolicy
from repro.graphs import adjacency as adj
from repro.graphs.generators import random_budget_network, random_m_edge_network


@pytest.fixture(scope="module")
def net100():
    return random_budget_network(100, 3, seed=1)


@pytest.fixture(scope="module")
def net50():
    return random_m_edge_network(50, 200, seed=2)


def test_bfs_single_source_n100(benchmark, net100):
    benchmark(adj.bfs_distances, net100.A, 0)


def test_apsp_n100(benchmark, net100):
    benchmark(adj.all_pairs_distances, net100.A)


def test_apsp_without_vertex_n100(benchmark, net100):
    benchmark(adj.distances_without_vertex, net100.A, 50)


def test_deviation_evaluator_build_n100(benchmark, net100):
    benchmark(DeviationEvaluator, net100, 10, DistanceMode.SUM)


def test_deviation_batch_n100(benchmark, net100):
    ev = DeviationEvaluator(net100, 10, DistanceMode.SUM)
    kept = net100.neighbors(10)[:-1]
    base = ev.base_vector(kept)
    candidates = np.arange(20, 90)
    benchmark(ev.batch_costs, base, candidates)


def test_asg_best_response_n100(benchmark, net100):
    game = AsymmetricSwapGame("sum")
    benchmark(game.best_responses, net100, 10)


def test_gbg_best_response_n50(benchmark, net50):
    game = GreedyBuyGame("sum", alpha=12.5)
    benchmark(game.best_responses, net50, 10)


def test_maxcost_policy_select_n50(benchmark, net50):
    game = GreedyBuyGame("sum", alpha=12.5)
    policy = MaxCostPolicy()
    rng = np.random.default_rng(0)
    benchmark(policy.select, game, net50, rng)


def test_unhappy_scan_n50(benchmark, net50):
    game = AsymmetricSwapGame("max")
    benchmark(game.unhappy_agents, net50)


# ---------------------------------------------------------------------------
# dynamics-trajectory benchmark: dense vs incremental backend
# ---------------------------------------------------------------------------

TRAJECTORY_NS = (30, 60, 120)
TRAJECTORY_SEED = 7


def _trajectory_setup(game_kind: str, n: int):
    """One reproducible (game, initial network, step cap) trajectory cell."""
    if game_kind == "asg":
        game = AsymmetricSwapGame("sum")
        net = random_budget_network(n, 3, seed=TRAJECTORY_SEED)
    elif game_kind == "gbg":
        game = GreedyBuyGame("sum", alpha=n / 4.0)
        net = random_m_edge_network(n, 2 * n, seed=TRAJECTORY_SEED)
    else:
        raise ValueError(game_kind)
    return game, net, 3 * n


def run_trajectory(game_kind: str, n: int, backend: str):
    """Run one trajectory cell under ``backend``; returns (seconds, result)."""
    game, net, max_steps = _trajectory_setup(game_kind, n)
    t0 = time.perf_counter()
    result = run_dynamics(
        game, net, MaxCostPolicy(), seed=TRAJECTORY_SEED,
        max_steps=max_steps, backend=backend,
    )
    return time.perf_counter() - t0, result


def bench_trajectory_cell(game_kind: str, n: int) -> dict:
    """Time both backends on one cell and verify trajectory equivalence."""
    dense_s, dense = run_trajectory(game_kind, n, "dense")
    inc_s, inc = run_trajectory(game_kind, n, "incremental")
    assert [(r.agent, r.move) for r in dense.trajectory] == [
        (r.agent, r.move) for r in inc.trajectory
    ], f"{game_kind} n={n}: backends diverged"
    assert dense.final.state_key() == inc.final.state_key()
    return {
        "game": game_kind,
        "n": n,
        "steps": dense.steps,
        "status": dense.status,
        "dense_s": round(dense_s, 4),
        "incremental_s": round(inc_s, 4),
        "speedup": round(dense_s / inc_s, 2),
        "backend_stats": inc.backend_stats,
    }


@pytest.mark.parametrize("game_kind", ["asg", "gbg"])
@pytest.mark.parametrize("n", TRAJECTORY_NS)
def test_dynamics_trajectory_backends(game_kind, n):
    """Backend equivalence at every grid cell.

    The >=2x speedup floor at n=120 is opt-in (``BENCH_ASSERT_SPEEDUP=1``)
    so a loaded machine or a no-BLAS numpy cannot fail the *equivalence*
    signal with a perf flake; the standalone ``main()`` run always
    records the measured ratios in BENCH_kernel.json.
    """
    import os

    cell = bench_trajectory_cell(game_kind, n)
    if n == 120 and os.environ.get("BENCH_ASSERT_SPEEDUP"):
        assert cell["speedup"] >= 2.0, cell
    print(f"\n{game_kind} n={n}: dense {cell['dense_s']}s, "
          f"incremental {cell['incremental_s']}s ({cell['speedup']}x)")


def main(smoke: bool = False) -> dict:
    """Run the trajectory matrix; full runs write the BENCH_kernel.json
    baseline, ``--smoke`` runs (CI) only print — they must never clobber
    the committed full-grid baseline with reduced data."""
    ns = TRAJECTORY_NS[:1] if smoke else TRAJECTORY_NS
    net = random_budget_network(100, 3, seed=1)
    reps = 3 if smoke else 10
    t0 = time.perf_counter()
    for _ in range(reps):
        adj.all_pairs_distances(net.A)
    apsp_ms = (time.perf_counter() - t0) / reps * 1e3
    t0 = time.perf_counter()
    for _ in range(reps):
        adj.all_pairs_distances_fast(net.A)
    apsp_fast_ms = (time.perf_counter() - t0) / reps * 1e3
    summary = {
        "kernel": {
            "apsp_bool_matmul_n100_ms": round(apsp_ms, 3),
            "apsp_blas_layered_n100_ms": round(apsp_fast_ms, 3),
        },
        "trajectories": [
            bench_trajectory_cell(game_kind, n)
            for game_kind in ("asg", "gbg")
            for n in ns
        ],
    }
    for cell in summary["trajectories"]:
        print(f"{cell['game']:>4} n={cell['n']:>3}: steps={cell['steps']:>4} "
              f"dense={cell['dense_s']:.2f}s incremental={cell['incremental_s']:.2f}s "
              f"speedup={cell['speedup']:.2f}x")
    if smoke:
        print("smoke run: baseline not rewritten")
    else:
        out = pathlib.Path(__file__).resolve().parent.parent / "BENCH_kernel.json"
        out.write_text(json.dumps(summary, indent=2) + "\n")
        print(f"baseline written to {out}")
    return summary


if __name__ == "__main__":
    import sys

    main(smoke="--smoke" in sys.argv)
