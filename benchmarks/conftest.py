"""Shared helpers for the benchmark suite.

Every paper figure has one bench module.  Figure benches run a
scaled-down version of the paper's grid once (``rounds=1``), print the
series tables the paper plots, assert the qualitative claims, and drop a
machine-readable summary under ``benchmarks/_results/`` for
EXPERIMENTS.md regeneration.

Paper-scale runs (n up to 100, thousands of trials) are available via
``examples/empirical_study.py --full``.
"""

from __future__ import annotations

import json
import pathlib

RESULTS_DIR = pathlib.Path(__file__).parent / "_results"


def save_summary(name: str, summary: dict) -> None:
    RESULTS_DIR.mkdir(exist_ok=True)
    with open(RESULTS_DIR / f"{name}.json", "w") as fh:
        json.dump(summary, fh, indent=2, default=str)


def run_figure_once(benchmark, spec, seed=0):
    """Run a figure grid exactly once under pytest-benchmark timing."""
    from repro.experiments.runner import run_figure

    return benchmark.pedantic(
        run_figure, args=(spec,), kwargs={"seed": seed}, iterations=1, rounds=1
    )
