"""Figure 7 — SUM-ASG with budget k: steps until convergence.

Paper: k in {1..6, 10}, n = 10..100, 10000 trials, max cost vs random
policy.  Claims: every run < 5n steps; max cost faster than random;
k = 1 needs only about n steps.
"""

from repro.experiments.asg_budget import figure7_spec
from repro.experiments.report import figure_summary, format_figure

from .conftest import run_figure_once, save_summary

N_VALUES = (10, 20, 30, 40)
TRIALS = 12
BUDGETS = (1, 2, 4)


def test_fig07_sum_asg_budget(benchmark):
    spec = figure7_spec(budgets=BUDGETS, n_values=N_VALUES, trials=TRIALS)
    result = run_figure_once(benchmark, spec, seed=7)
    print()
    print(format_figure(result, "mean"))
    print()
    print(format_figure(result, "max"))
    save_summary("fig07", figure_summary(result))

    # paper claim: all runs converge within the 5n envelope
    assert result.non_converged_total() == 0
    assert result.overall_max_ratio() < 5.0

    # paper claim: max cost policy at least as fast as random (SUM),
    # most visible for mid-range budgets at the larger n
    n = N_VALUES[-1]
    mc = result.series["k=2, max cost"][n].mean
    rnd = result.series["k=2, random"][n].mean
    assert mc <= rnd * 1.2

    # paper claim: k=1 converges in about n steps
    assert result.series["k=1, max cost"][n].max <= 2 * n
