"""Observability overhead benchmarks: the cost of leaving telemetry in.

The obs meters and spans are permanently compiled into the dynamics
engine, the distance backends and the explorer, so the price of the
instrumentation *is* a kernel number.  This bench pins it from three
angles:

1. **micro** — per-operation cost of the hot-path handles (counter
   ``inc``, labelled ``inc``, histogram ``observe``, no-op span,
   active span), reported next to a bare dict update measured in the
   same run for scale (informational, not gated: see
   :func:`compare_to_baseline`);
2. **trajectory** — the n=120 dynamics cells of ``bench_kernel.py``
   re-run with the meter force-disabled, enabled, and enabled+traced.
   Every variant must replay the *identical* trajectory (telemetry
   must never perturb the simulation);
3. **kernel cross-check** — disabled-mode trajectory seconds compared
   against the committed ``BENCH_kernel.json`` cells: the full run
   refuses to write a baseline while disabled-mode overhead exceeds
   ``DISABLED_OVERHEAD_FACTOR`` (2%) on any gated cell, so "telemetry
   is free when off" stays an enforced invariant, not a comment.

Baseline discipline mirrors ``bench_kernel.py``: standalone runs diff
against the committed ``BENCH_obs.json`` and exit non-zero on any >25%
regression; a regressed run never rewrites the baseline.  ``--smoke``
(CI) runs the n=30 cells only and never writes; ``--no-write`` measures
the full grid without rewriting; ``--force-write`` accepts regressed
numbers.
"""

import json
import pathlib
import sys
import tempfile
import time
from typing import Optional

import pytest

sys.path.insert(0, str(pathlib.Path(__file__).resolve().parent))
from bench_kernel import _trajectory_setup  # noqa: E402

from repro.core.dynamics import run_dynamics  # noqa: E402
from repro.core.policies import MaxCostPolicy  # noqa: E402
from repro.obs import metrics as M  # noqa: E402
from repro.obs import tracing as T  # noqa: E402

BASELINE_PATH = pathlib.Path(__file__).resolve().parent.parent / "BENCH_obs.json"
KERNEL_BASELINE_PATH = BASELINE_PATH.parent / "BENCH_kernel.json"

REGRESSION_FACTOR = 1.25

#: trajectory cells whose *baseline* time is below this are too fast to
#: time reliably; reported but not gated (same rule as bench_kernel).
MIN_GATE_SECONDS = 0.1

#: disabled-mode trajectory seconds may exceed the committed
#: BENCH_kernel.json incremental cell by at most this factor — the
#: ISSUE's "telemetry off costs <=2%" acceptance, enforced at
#: baseline-write time (the kernel baseline and this baseline are
#: measured on the same machine, so absolute seconds compare).
DISABLED_OVERHEAD_FACTOR = 1.02

TRAJECTORY_SEED = 7
TRAJECTORY_NS = (30, 120)

#: the same-run primitive the counter hot path wraps (a bare
#: ``d[k] = d.get(k, 0.0) + 1``), reported alongside the handle costs
#: so readers can judge them relative to machine speed.
MICRO_REFERENCE = "dict_update_ns"


# ---------------------------------------------------------------------------
# micro: per-op handle cost
# ---------------------------------------------------------------------------

def _per_op_ns(fn, n: int, reps: int = 5) -> float:
    """Best-of-``reps`` per-iteration wall time of ``fn(n)`` in ns."""
    fn(n)  # warm
    best = float("inf")
    for _ in range(reps):
        t0 = time.perf_counter()
        fn(n)
        best = min(best, time.perf_counter() - t0)
    return best / n * 1e9


def _micro(n: int) -> dict:
    meter = M.Meter(enabled=True)
    plain = meter.counter("bench_plain_total", "").labels()
    labelled = meter.counter("bench_labelled_total", "", ("tier",)) \
                    .labels(tier="hot")
    hist = meter.histogram("bench_seconds", "").labels()
    off = M.Meter(enabled=False).counter("bench_off_total", "").labels()

    def dict_update(k, d={}):
        for _ in range(k):
            d["x"] = d.get("x", 0.0) + 1

    def counter_inc(k):
        for _ in range(k):
            plain.inc()

    def labelled_inc(k):
        for _ in range(k):
            labelled.inc()

    def hist_observe(k):
        for _ in range(k):
            hist.observe(0.017)

    def disabled_inc(k):
        for _ in range(k):
            off.inc()

    def span_noop(k):
        for _ in range(k):
            with T.span("bench.noop"):
                pass

    out = {
        MICRO_REFERENCE: _per_op_ns(dict_update, n),
        "counter_inc_ns": _per_op_ns(counter_inc, n),
        "labelled_inc_ns": _per_op_ns(labelled_inc, n),
        "histogram_observe_ns": _per_op_ns(hist_observe, n),
        "disabled_inc_ns": _per_op_ns(disabled_inc, n),
    }
    T.configure(None)
    out["span_noop_ns"] = _per_op_ns(span_noop, n // 4)
    with tempfile.TemporaryDirectory(prefix="bench-obs-") as tmp:
        T.configure(pathlib.Path(tmp) / "trace.jsonl")
        try:
            out["span_active_ns"] = _per_op_ns(span_noop, max(n // 50, 500),
                                               reps=3)
        finally:
            T.configure(None)
    return {k: round(v, 1) for k, v in out.items()}


# ---------------------------------------------------------------------------
# trajectory: disabled / enabled / traced, all byte-identical
# ---------------------------------------------------------------------------

def _run_cell(game_kind: str, n: int):
    game, net, max_steps = _trajectory_setup(game_kind, n)
    t0 = time.perf_counter()
    result = run_dynamics(game, net, MaxCostPolicy(), seed=TRAJECTORY_SEED,
                          max_steps=max_steps, backend="incremental")
    return time.perf_counter() - t0, result


def bench_trajectory_cell(game_kind: str, n: int, reps: int = 3) -> dict:
    """Time one cell with the meter off, on, and on+traced.

    All three variants must converge to the same final state — the
    telemetry-never-perturbs invariant is asserted on every repetition.
    """
    was_enabled = M.DEFAULT.enabled
    variants = {}
    key = None
    try:
        with tempfile.TemporaryDirectory(prefix="bench-obs-") as tmp:
            for variant in ("disabled_s", "enabled_s", "traced_s"):
                M.DEFAULT.enabled = variant != "disabled_s"
                if variant == "traced_s":
                    T.configure(pathlib.Path(tmp) / f"{game_kind}{n}.jsonl")
                best = float("inf")
                for _ in range(reps):
                    seconds, result = _run_cell(game_kind, n)
                    best = min(best, seconds)
                    if key is None:
                        key = result.final.state_key()
                        steps = result.steps
                    assert result.final.state_key() == key, (
                        f"{game_kind} n={n}: {variant} perturbed the run")
                variants[variant] = round(best, 4)
                T.configure(None)
    finally:
        M.DEFAULT.enabled = was_enabled
        T.configure(None)
    enabled_pct = (variants["enabled_s"] / variants["disabled_s"] - 1) * 100
    return {"game": game_kind, "n": n, "steps": steps, **variants,
            "enabled_overhead_pct": round(enabled_pct, 1)}


@pytest.mark.parametrize("game_kind", ["asg", "gbg"])
def test_telemetry_never_perturbs_the_trajectory(game_kind):
    """Meter on/off/traced replay the identical n=30 trajectory."""
    cell = bench_trajectory_cell(game_kind, 30, reps=1)
    assert cell["steps"] > 0
    print(f"\n{game_kind} n=30: disabled {cell['disabled_s']}s, "
          f"enabled {cell['enabled_s']}s, traced {cell['traced_s']}s")


def test_disabled_handles_record_nothing():
    """Force-disabled meter: the hot path leaves no residue at all."""
    meter = M.Meter(enabled=False)
    counter = meter.counter("bench_none_total", "").labels()
    hist = meter.histogram("bench_none_seconds", "").labels()
    for _ in range(100):
        counter.inc()
        hist.observe(1.0)
    snap = meter.snapshot()
    assert snap["bench_none_total"]["values"] == {}
    assert snap["bench_none_seconds"]["values"] == {}


# ---------------------------------------------------------------------------
# baseline discipline
# ---------------------------------------------------------------------------

def compare_to_baseline(summary: dict, baseline: dict) -> list:
    """>25% regressions of ``summary`` vs ``baseline``.

    Only the trajectory cells above the :data:`MIN_GATE_SECONDS` floor
    are gated.  The micro numbers ride along in the baseline for
    trend-watching but are not gated: nanosecond-scale interpreter
    loops swing far more than 25% with scheduler state even best-of-5
    (and even normalised against :data:`MICRO_REFERENCE`), while any
    real hot-path regression big enough to matter shows up in the
    gated trajectory seconds anyway."""
    regressions = []
    old_cells = {(c["game"], c["n"]): c
                 for c in baseline.get("trajectories", [])}
    for cell in summary.get("trajectories", []):
        old = old_cells.get((cell["game"], cell["n"]))
        if old is None or old["disabled_s"] < MIN_GATE_SECONDS:
            continue
        for field in ("disabled_s", "enabled_s", "traced_s"):
            if cell[field] > old[field] * REGRESSION_FACTOR:
                regressions.append(
                    (f"{cell['game']}.n{cell['n']}.{field}",
                     old[field], cell[field]))
    return regressions


def disabled_overhead_vs_kernel(summary: dict, kernel_baseline: dict) -> list:
    """Cells where disabled-mode seconds exceed the committed kernel
    incremental cell by more than :data:`DISABLED_OVERHEAD_FACTOR`."""
    kernel_cells = {(c["game"], c["n"]): c
                    for c in kernel_baseline.get("trajectories", [])}
    violations = []
    for cell in summary.get("trajectories", []):
        old = kernel_cells.get((cell["game"], cell["n"]))
        if old is None or old["incremental_s"] < MIN_GATE_SECONDS:
            continue
        if cell["disabled_s"] > old["incremental_s"] * DISABLED_OVERHEAD_FACTOR:
            violations.append((f"{cell['game']}.n{cell['n']}",
                               old["incremental_s"], cell["disabled_s"]))
    return violations


def main(smoke: bool = False, write_baseline: Optional[bool] = None,
         force: bool = False) -> int:
    ns = TRAJECTORY_NS[:1] if smoke else TRAJECTORY_NS
    summary = {
        "micro": _micro(n=50_000 if smoke else 200_000),
        "trajectories": [
            # the gated n=120 cells sit under a 2% cross-check against
            # BENCH_kernel.json: give them enough best-of repetitions
            # for the timing floor to converge through scheduler noise
            bench_trajectory_cell(game_kind, n,
                                  reps=2 if smoke else (10 if n >= 120 else 6))
            for game_kind in ("asg", "gbg")
            for n in ns
        ],
    }
    print("micro:", json.dumps(summary["micro"]))
    for cell in summary["trajectories"]:
        print(f"{cell['game']:>4} n={cell['n']:>3}: "
              f"disabled={cell['disabled_s']:.4f}s "
              f"enabled={cell['enabled_s']:.4f}s "
              f"traced={cell['traced_s']:.4f}s "
              f"(+{cell['enabled_overhead_pct']:.1f}% enabled)")

    violations = []
    if KERNEL_BASELINE_PATH.exists():
        kernel = json.loads(KERNEL_BASELINE_PATH.read_text())
        violations = disabled_overhead_vs_kernel(summary, kernel)
        for key, old, new in violations:
            print(f"DISABLED-MODE OVERHEAD {key}: kernel {old}s -> "
                  f"disabled {new}s (allowed "
                  f"{old * DISABLED_OVERHEAD_FACTOR:.4f}s = +2%)")
        if not violations:
            print(f"disabled-mode overhead <=2% vs "
                  f"{KERNEL_BASELINE_PATH.name} on every gated cell")

    regressions = []
    if BASELINE_PATH.exists():
        baseline = json.loads(BASELINE_PATH.read_text())
        regressions = compare_to_baseline(summary, baseline)
        for key, old, new in regressions:
            print(f"REGRESSION {key}: {old} -> {new} "
                  f"(allowed {REGRESSION_FACTOR:.2f}x = "
                  f"{old * REGRESSION_FACTOR:.4g})")
        if not regressions:
            print(f"no >25% regressions vs {BASELINE_PATH.name}")
    else:
        print("no committed baseline found; skipping regression check")

    failed = regressions or (violations if not smoke else [])
    if write_baseline is None:
        write_baseline = not smoke
    if write_baseline and failed and not force:
        print("baseline NOT rewritten: failures above; fix them or rerun "
              "with --force-write to accept the new numbers")
    elif write_baseline:
        BASELINE_PATH.write_text(json.dumps(summary, indent=2) + "\n")
        print(f"baseline written to {BASELINE_PATH}")
    else:
        print("baseline not rewritten")
    return 1 if failed else 0


if __name__ == "__main__":
    if "--force-write" in sys.argv:
        sys.exit(main(smoke="--smoke" in sys.argv, write_baseline=True,
                      force=True))
    sys.exit(main(smoke="--smoke" in sys.argv,
                  write_baseline=False if "--no-write" in sys.argv else None))
